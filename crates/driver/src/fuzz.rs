//! `fcc fuzz` — differential fuzzing of the destruction pipelines.
//!
//! Thousands of seeded MiniLang programs per second are pushed through
//! the three pipeline families (New with folding, Standard with folding,
//! Briggs φ-webs without), each checked four ways:
//!
//! 1. **Differential interpreter oracle** — the rewritten code must
//!    produce the reference CFG's exact return value and memory.
//! 2. **Destruction audit** — `fcc_lint::audit_destruction` over the
//!    recorded trace (congruence classes, Waiting-copy discipline).
//! 3. **Structural verification** — no surviving φs, `verify_function`
//!    clean.
//! 4. **Failure containment** — each seed runs under the batch driver's
//!    own [`crate::recover::contain`] boundary (`catch_unwind` plus an
//!    optional [`FuzzConfig::fuel`] budget), so a panicking phase or a
//!    non-terminating fixpoint loop counts as a failure for that seed
//!    instead of killing the run. Fuzz and batch share one containment
//!    mechanism.
//! 5. **k-register dimension** — every seed is additionally compiled at
//!    k ∈ {4, 8, 16}: the family's SSA is spilled to MaxLive ≤ k
//!    (cost-guided), destructed by the family's own pipeline, allocated
//!    with a hard bound of k registers, certified by
//!    [`fcc_pressure::audit_allocation`], and the final (possibly
//!    residually spilled) code re-run against the same interpreter
//!    oracle. These findings shrink in their own `"spill"` class.
//!
//! On failure the greedy AST shrinker (`fcc_workloads::shrink`) re-runs
//! the same oracle on ever-smaller candidates and reports a minimal
//! MiniLang repro, printable with [`fcc_frontend::to_source`]. A
//! candidate only counts when it fails in the same [`failure_class`]
//! (lowering / fuel exhaustion / pipeline) as the original finding.

use fcc_analysis::{fuel, AnalysisManager};
use fcc_core::{coalesce_ssa_traced, CoalesceOptions};
use fcc_frontend::{ast::Program, lower_program};
use fcc_interp::run_with_memory;
use fcc_ir::{verify::verify_function, Function};
use fcc_lint::audit_destruction;
use fcc_opt::{copy_preserving_pipeline, standard_pipeline};
use fcc_pressure::audit_allocation;
use fcc_regalloc::{
    allocate_managed, coalesce_copies_managed, destruct_via_webs_traced, spill_to_k, AllocOptions,
    BriggsOptions, GraphMode, SpillStrategy,
};
use fcc_ssa::{build_ssa_with, destruct_standard_traced, verify_ssa, SsaFlavor};
use fcc_workloads::{generate, shrink, GenConfig};

use crate::pool::{par_map, BatchTiming};

/// Interpreter memory cells per run (matches the generated-program
/// tests; generator addresses are masked well below this).
const MEM: usize = 256;
/// Interpreter fuel per run (generated programs terminate fast).
const FUEL: u64 = 20_000_000;
/// Register bounds for the k-constrained dimension: tight enough to
/// force spilling on most seeds (k = 4), a realistic machine width
/// (k = 8), and a bound most seeds fit without spilling (k = 16).
const K_SWEEP: [u32; 3] = [4, 8, 16];

/// Fuzzing campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of seeds to check.
    pub seeds: u64,
    /// First seed (campaigns are deterministic in `start..start+seeds`).
    pub start: u64,
    /// Worker threads (`0` = available parallelism).
    pub jobs: usize,
    /// Run the optimiser between SSA construction and destruction.
    pub opt: bool,
    /// Program shape.
    pub shape: GenConfig,
    /// Max oracle evaluations the shrinker may spend per failure.
    pub shrink_budget: usize,
    /// Per-seed fuel budget for the compile pipelines (`None` =
    /// unlimited); exhaustion is its own shrinkable failure class.
    pub fuel: Option<u64>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: 1000,
            start: 0,
            jobs: 0,
            opt: true,
            shape: GenConfig::default(),
            shrink_budget: 4000,
            fuel: None,
        }
    }
}

/// One failing seed, with its shrunk repro.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The failing seed.
    pub seed: u64,
    /// What the oracle saw (first check that failed).
    pub detail: String,
    /// The generated program as-is.
    pub program: Program,
    /// The shrunk repro (still failing).
    pub shrunk: Program,
    /// Oracle evaluations the shrinker spent.
    pub shrink_evals: usize,
    /// Whether shrinking reached a fixpoint within budget.
    pub shrink_converged: bool,
}

/// A whole campaign's result.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Seeds checked.
    pub checked: u64,
    /// Failures in seed order (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
    /// Pool timing of the sweep (excludes shrinking).
    pub timing: BatchTiming,
}

/// The differential oracle: `Ok(())` when every pipeline preserves the
/// program, `Err(detail)` naming the first violated check.
///
/// The oracle is deliberately total: lowering failures and panics are
/// reported as `Err`, a program whose *reference* execution traps is
/// reported as `Ok` (nothing to differentiate against — the shrinker
/// relies on this to reject candidates it broke itself, e.g. by
/// rewriting a divisor to zero).
pub fn check_program(prog: &Program, opt: bool) -> Result<(), String> {
    check_program_with(prog, opt, None)
}

/// [`check_program`] with an explicit per-seed fuel budget, run under
/// the batch driver's containment boundary ([`crate::recover::contain`])
/// so panics and fuel stops are classified exactly as batch compilation
/// classifies them.
pub fn check_program_with(prog: &Program, opt: bool, fuel: Option<u64>) -> Result<(), String> {
    let prog = prog.clone();
    let (result, _spent) = crate::recover::contain(fuel, move || check_program_inner(&prog, opt));
    result.map_err(|e| e.to_string())
}

/// The shrinker's failure classes. Dropping a `let` orphans its uses and
/// such a candidate fails to *lower*; likewise a candidate that merely
/// runs out of fuel is a different finding than a miscompile, and a
/// pipeline whose output traps out-of-bounds where the reference ran
/// clean ("memory") is a different finding than a wrong return value,
/// and anything the k-register dimension flags — broken spill code, an
/// audit violation, a post-allocation miscompile — is a "spill" finding
/// distinct from the unconstrained pipelines. A shrink candidate only
/// counts when its failure class matches the original's.
pub fn failure_class(detail: &str) -> &'static str {
    if detail.starts_with("lowering failed") {
        "lowering"
    } else if detail.starts_with("fuel exhausted") {
        "fuel"
    } else if detail.starts_with("spill ") {
        // Checked before "memory": an out-of-bounds trap introduced by
        // the spill path is a spill-dimension finding.
        "spill"
    } else if detail.contains("out-of-bounds memory access") {
        "memory"
    } else {
        "pipeline"
    }
}

fn oracle_args(prog: &Program) -> Vec<i64> {
    // Small mixed-sign values, deterministic in the arity alone so the
    // shrinker's candidates are judged by the same inputs.
    (0..prog.params.len())
        .map(|i| [5, -3, 9, 2, 7, -1][i % 6])
        .collect()
}

fn run_f(f: &Function, args: &[i64]) -> Result<(Option<i64>, Vec<i64>), String> {
    let out = run_with_memory(f, args, vec![0; MEM], FUEL).map_err(|e| e.to_string())?;
    Ok((out.ret, out.memory))
}

fn check_program_inner(prog: &Program, opt: bool) -> Result<(), String> {
    let base = match lower_program(prog) {
        Ok(f) => f,
        Err(e) => return Err(format!("lowering failed: {e}")),
    };
    verify_function(&base).map_err(|e| format!("front-end CFG invalid: {e}"))?;
    let args = oracle_args(prog);
    // A trapping or diverging reference leaves nothing to compare.
    let Ok(reference) = run_f(&base, &args) else {
        return Ok(());
    };

    let check = |label: &str, func: &Function| -> Result<(), String> {
        if func.has_phis() {
            return Err(format!("{label}: phis survived destruction"));
        }
        verify_function(func).map_err(|e| format!("{label}: invalid output: {e}"))?;
        let got = run_f(func, &args).map_err(|e| format!("{label}: execution failed: {e}"))?;
        if got != reference {
            return Err(format!(
                "{label}: behaviour changed (expected {:?}, got {:?})",
                reference.0, got.0
            ));
        }
        Ok(())
    };
    let audit = |label: &str, trace: &fcc_ssa::DestructionTrace| -> Result<(), String> {
        let diags = audit_destruction(trace);
        if let Some(d) = diags.iter().find(|d| d.is_error()) {
            return Err(format!("{label}: audit: {}", d.render(&trace.pre)));
        }
        Ok(())
    };

    // Folded SSA, optionally optimised — shared by New and Standard.
    // Pass labels keep panic / fuel attribution accurate here exactly as
    // in batch compilation (the pass manager refines them per pass).
    let mut am = AnalysisManager::new();
    let mut ssa = base.clone();
    fuel::set_pass("build-ssa");
    build_ssa_with(&mut ssa, SsaFlavor::Pruned, true, &mut am);
    if opt {
        standard_pipeline().run(&mut ssa, &mut am);
    }
    verify_ssa(&ssa).map_err(|e| format!("ssa: {e}"))?;

    {
        let mut f = ssa.clone();
        let mut am = AnalysisManager::new();
        fuel::set_pass("coalesce-new");
        let (_, trace) = coalesce_ssa_traced(&mut f, &CoalesceOptions::default(), &mut am);
        audit("new", &trace)?;
        check("new", &f)?;
    }
    {
        let mut f = ssa.clone();
        let mut am = AnalysisManager::new();
        fuel::set_pass("destruct-standard");
        let (_, trace) = destruct_standard_traced(&mut f, &mut am);
        audit("standard", &trace)?;
        check("standard", &f)?;
    }

    // Unfolded SSA for the φ-web path (copy-preserving optimisation).
    let briggs_ssa = {
        let mut am = AnalysisManager::new();
        let mut f = base.clone();
        fuel::set_pass("build-ssa");
        build_ssa_with(&mut f, SsaFlavor::Pruned, false, &mut am);
        if opt {
            copy_preserving_pipeline().run(&mut f, &mut am);
        }
        verify_ssa(&f).map_err(|e| format!("briggs ssa: {e}"))?;
        f
    };
    {
        let mut f = briggs_ssa.clone();
        let mut am = AnalysisManager::new();
        fuel::set_pass("webs");
        let (_, trace) = destruct_via_webs_traced(&mut f);
        audit("briggs", &trace)?;
        fuel::set_pass("briggs-coalesce");
        coalesce_copies_managed(
            &mut f,
            &BriggsOptions {
                mode: GraphMode::Restricted,
                ..Default::default()
            },
            &mut am,
        );
        check("briggs", &f)?;
    }

    // The k-register dimension: spill each family's SSA down to k,
    // destruct with that family's pipeline, allocate under a hard bound
    // of k registers, certify the result with the allocation auditor,
    // and re-run the residually-spilled code against the reference.
    for k in K_SWEEP {
        for family in ["new", "standard", "briggs"] {
            let label = format!("spill {family} k={k}");
            let src = if family == "briggs" {
                &briggs_ssa
            } else {
                &ssa
            };
            let mut f = src.clone();
            let mut am = AnalysisManager::new();
            fuel::set_pass("spill");
            spill_to_k(&mut f, k, SpillStrategy::CostGuided);
            verify_ssa(&f).map_err(|e| format!("{label}: spilling broke SSA: {e}"))?;
            match family {
                "new" => {
                    fuel::set_pass("coalesce-new");
                    coalesce_ssa_traced(&mut f, &CoalesceOptions::default(), &mut am);
                }
                "standard" => {
                    fuel::set_pass("destruct-standard");
                    destruct_standard_traced(&mut f, &mut am);
                }
                _ => {
                    fuel::set_pass("webs");
                    destruct_via_webs_traced(&mut f);
                    fuel::set_pass("briggs-coalesce");
                    coalesce_copies_managed(
                        &mut f,
                        &BriggsOptions {
                            mode: GraphMode::Restricted,
                            ..Default::default()
                        },
                        &mut am,
                    );
                }
            }
            fuel::set_pass("allocate");
            let alloc = allocate_managed(
                &mut f,
                &AllocOptions {
                    registers: k as usize,
                    ..Default::default()
                },
                &mut am,
            )
            .map_err(|e| format!("{label}: allocation failed: {e}"))?;
            let diags = audit_allocation(&f, &alloc.coloring, k, f.spill_slot_count());
            if let Some(d) = diags.first() {
                return Err(format!("{label}: audit: {d}"));
            }
            // The final run covers the whole path: SSA spill code,
            // destruction copies, and the allocator's residual spills.
            check(&label, &f)?;
        }
    }
    Ok(())
}

/// Run a fuzzing campaign: sweep the seed range on the pool, then
/// shrink every failure serially (deterministic order and results).
pub fn fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    // The oracle treats panics as findings; silence the default hook's
    // backtrace spam for the duration (the shrinker may re-panic the
    // same bug hundreds of times).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (results, timing) = par_map(cfg.seeds as usize, cfg.jobs, |i| {
        let seed = cfg.start + i as u64;
        let prog = generate(seed, &cfg.shape);
        check_program_with(&prog, cfg.opt, cfg.fuel)
            .err()
            .map(|detail| (seed, prog, detail))
    });

    let failures = results
        .into_iter()
        .flatten()
        .map(|(seed, program, detail)| {
            let class = failure_class(&detail);
            let r = shrink(&program, cfg.shrink_budget, |p| {
                matches!(check_program_with(p, cfg.opt, cfg.fuel),
                         Err(e) if failure_class(&e) == class)
            });
            FuzzFailure {
                seed,
                detail,
                program,
                shrunk: r.program,
                shrink_evals: r.evals,
                shrink_converged: r.converged,
            }
        })
        .collect();
    std::panic::set_hook(hook);

    FuzzOutcome {
        checked: cfg.seeds,
        failures,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_sweep_is_clean() {
        let out = fuzz(&FuzzConfig {
            seeds: 40,
            jobs: 2,
            ..Default::default()
        });
        assert_eq!(out.checked, 40);
        assert!(
            out.failures.is_empty(),
            "unexpected failures: {:?}",
            out.failures
                .iter()
                .map(|f| (f.seed, &f.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_accepts_known_good_programs() {
        for seed in [0, 1, 17, 99] {
            let prog = generate(seed, &GenConfig::default());
            check_program(&prog, true).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            check_program(&prog, false).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn spill_findings_have_their_own_class() {
        assert_eq!(
            failure_class("spill new k=4: audit: alloc-over-k ..."),
            "spill"
        );
        // Even a trap introduced by the spill path stays in the spill
        // class, so the shrinker cannot drift into a "memory" repro.
        assert_eq!(
            failure_class("spill briggs k=8: execution failed: out-of-bounds memory access"),
            "spill"
        );
        assert_eq!(
            failure_class("new: execution failed: out-of-bounds memory access"),
            "memory"
        );
        assert_eq!(failure_class("fuel exhausted in allocate"), "fuel");
    }

    #[test]
    fn oracle_flags_a_program_that_does_not_lower() {
        use fcc_frontend::ast::{Expr, Stmt};
        let prog = Program {
            name: "bad".into(),
            params: vec![],
            body: vec![Stmt::Return {
                value: Some(Expr::Var("undefined_variable".into())),
            }],
        };
        let err = check_program(&prog, false).unwrap_err();
        assert!(err.contains("lowering failed"), "got: {err}");
    }
}
