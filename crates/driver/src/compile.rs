//! Per-function pipeline execution and the parallel batch driver.
//!
//! [`compile_function`] is the single code path behind `fcc`: front-end
//! CFG in, φ-free (optionally optimised, simplified, allocated) code
//! out, with every phase instrumented as a [`PhaseRecord`]. The CLI
//! calls it once for a single-function file and through
//! [`compile_module`] for multi-function files, where the module's
//! functions are sharded across a scoped thread pool.
//!
//! Parallelism never changes output. Each worker invocation builds its
//! own [`AnalysisManager`] and pass manager (per-function analyses share
//! no mutable state — the managers are keyed to one function's
//! modification epoch), and [`compile_module`] merges results in module
//! order, so `--jobs 1` and `--jobs 64` print byte-identical IR and
//! diagnostics.

use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

use fcc_analysis::AnalysisManager;
use fcc_core::{coalesce_ssa_managed, coalesce_ssa_traced, CoalesceOptions, SplitStrategy};
use fcc_ir::{Function, Module};
use fcc_lint::{audit_destruction, lint_function, LintStage};
use fcc_opt::{copy_preserving_pipeline, simplify_cfg_with, standard_pipeline, RunSummary};
use fcc_pressure::audit_allocation;
use fcc_regalloc::{
    allocate_managed, coalesce_copies_managed, destruct_via_webs, destruct_via_webs_traced,
    spill_to_k, AllocOptions, BriggsOptions, GraphMode, SpillStrategy,
};
use fcc_ssa::{
    build_ssa_with, destruct_sreedhar_i, destruct_sreedhar_i_traced, destruct_standard_traced,
    destruct_standard_with, verify_ssa, DestructionTrace, SsaFlavor,
};

use crate::pool::BatchTiming;
use crate::report::{merge_phases, PhaseRecord, PhaseTimer};
use crate::request::{CompileRequest, RequestError};

/// The destruction pipeline to run, covering every algorithm the CLI
/// exposes (a superset of the four benchmarked [`crate::Pipeline`]s).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineSpec {
    /// The paper's dominance-forest coalescer.
    New,
    /// Same, splitting congruence classes by edge cut.
    NewCut,
    /// Naive Briggs et al. φ instantiation (no coalescing).
    Standard,
    /// Sreedhar Method I (CSSA isolation copies).
    Sreedhar,
    /// φ-web unioning + iterated interference-graph coalescer.
    Briggs,
    /// Same, restricted to copy-related names.
    BriggsStar,
}

impl PipelineSpec {
    /// Every pipeline, in the CLI's listing order.
    pub const ALL: [PipelineSpec; 6] = [
        PipelineSpec::New,
        PipelineSpec::NewCut,
        PipelineSpec::Standard,
        PipelineSpec::Sreedhar,
        PipelineSpec::Briggs,
        PipelineSpec::BriggsStar,
    ];

    /// Parse the CLI spelling.
    #[deprecated(
        since = "0.2.0",
        note = "use the `FromStr` impl: `s.parse::<PipelineSpec>()`"
    )]
    pub fn parse(s: &str) -> Option<Self> {
        s.parse().ok()
    }

    /// The canonical spelling, shared by the CLI, the serve protocol,
    /// and the cache key (also what [`Display`](fmt::Display) prints).
    pub fn label(self) -> &'static str {
        match self {
            PipelineSpec::New => "new",
            PipelineSpec::NewCut => "new-cut",
            PipelineSpec::Standard => "standard",
            PipelineSpec::Sreedhar => "sreedhar",
            PipelineSpec::Briggs => "briggs",
            PipelineSpec::BriggsStar => "briggs-star",
        }
    }

    /// The briggs pipelines destruct by φ-web unioning, which requires
    /// copies kept un-folded (webs must be interference-free).
    pub fn needs_no_fold(self) -> bool {
        matches!(self, PipelineSpec::Briggs | PipelineSpec::BriggsStar)
    }
}

impl fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for PipelineSpec {
    type Err = RequestError;

    fn from_str(s: &str) -> Result<Self, RequestError> {
        Self::ALL
            .into_iter()
            .find(|p| p.label() == s)
            .ok_or_else(|| RequestError::UnknownPipeline(s.to_string()))
    }
}

/// What the k-register path did to one function: the SSA-level spiller's
/// work plus the allocator's residual spills, as the bench tables and the
/// CLI `--stats` lines report them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillSummary {
    /// The hard register bound compiled against.
    pub k: u32,
    /// `spill` instructions the SSA-level spiller inserted.
    pub ssa_spills: usize,
    /// `reload` instructions the SSA-level spiller inserted.
    pub ssa_reloads: usize,
    /// MaxLive before any spilling.
    pub maxlive_before: u32,
    /// MaxLive after the SSA-level spiller (φ-parallelism and operand
    /// pins can keep this above `k`; the allocator's residual spilling
    /// closes the gap and the auditor certifies the final result).
    pub maxlive_after: u32,
    /// Values the allocator spilled residually after destruction.
    pub residual_spills: usize,
    /// Total spill slots in the final program (SSA + residual).
    pub slots: u32,
}

/// The result of compiling one function: rewritten code plus everything
/// the CLI may print about it.
#[derive(Clone, Debug)]
pub struct FunctionOutcome {
    /// The rewritten function.
    pub func: Function,
    /// Instrumented phases in execution order.
    pub phases: Vec<PhaseRecord>,
    /// Optimiser summary when [`CompileRequest::opt`] was set.
    pub opt_summary: Option<RunSummary>,
    /// The `--stats` commentary lines, in emission order (without the
    /// leading `; `).
    pub stat_lines: Vec<String>,
    /// Peak bytes held by this function's analysis cache.
    pub analysis_peak_bytes: usize,
    /// SSA-build → rewrite wall time for this function.
    pub compile_time: Duration,
    /// Function-level MaxLive measured on the optimised SSA form, just
    /// before destruction — the certified register demand (see
    /// `fcc-pressure`).
    pub maxlive: u32,
    /// Spill accounting when [`CompileRequest::k_registers`] was set.
    pub spill: Option<SpillSummary>,
}

/// Run the configured pipeline on one pre-SSA function.
///
/// This is `fcc`'s whole middle: SSA construction (with optional
/// optimisation and `--verify-each` gating), destruction by the chosen
/// algorithm, then optional CFG simplification and register allocation.
///
/// # Errors
/// Any phase failure — invalid SSA, a failing `--verify-each` lint
/// report, an unsatisfiable allocation — aborts with a message naming
/// the phase. Precondition violations are caught up front by
/// [`CompileRequest::validate`] (the serve daemon rejects them at the
/// protocol boundary without ever reaching this function).
pub fn compile_function(
    mut func: Function,
    cfg: &CompileRequest,
) -> Result<FunctionOutcome, String> {
    cfg.validate().map_err(|e| e.to_string())?;

    // One manager serves every phase of this function; workers never
    // share managers, so batch compilation has no cross-thread state.
    let mut am = AnalysisManager::new();
    let mut phases: Vec<PhaseRecord> = Vec::new();
    let mut stat_lines: Vec<String> = Vec::new();

    let t0 = Instant::now();
    let timer = PhaseTimer::start("build-ssa", &am);
    let ssa_stats = build_ssa_with(&mut func, SsaFlavor::Pruned, cfg.fold, &mut am);
    phases.push(timer.finish_with(&am, &ssa_stats));

    let mut opt_summary: Option<RunSummary> = None;
    if cfg.opt {
        let timer = PhaseTimer::start("optimise", &am);
        // φ-web destruction (briggs pipelines) needs copies kept alive;
        // copy propagation is standalone copy folding and would merge
        // interfering webs (see fcc_opt::copy_preserving_pipeline).
        let pm = if cfg.pipeline.needs_no_fold() {
            copy_preserving_pipeline()
        } else {
            standard_pipeline()
        };
        let summary = if cfg.verify_each {
            pm.run_verified(&mut func, &mut am, LintStage::Ssa)
                .map_err(|v| format!("--verify-each: {v}\n{}", v.report.render_text(&func)))?
        } else {
            pm.run(&mut func, &mut am)
        };
        phases.push(timer.finish(&am));
        stat_lines.push(format!("optimiser: {} rounds to fixpoint", summary.rounds));
        opt_summary = Some(summary);
    }
    verify_ssa(&func).map_err(|e| format!("internal: invalid SSA: {e}"))?;
    let maxlive = am.pressure(&func).maxlive();

    // The k-register path spills on strict SSA, before destruction:
    // reloads define fresh names, so the program stays strict SSA (and
    // therefore chordal) and the downstream pipeline is unchanged.
    let mut spill_summary: Option<SpillSummary> = None;
    if let Some(kr) = cfg.k_registers {
        let timer = PhaseTimer::start("spill", &am);
        let s = spill_to_k(&mut func, kr, SpillStrategy::CostGuided);
        phases.push(timer.finish(&am));
        verify_ssa(&func).map_err(|e| format!("internal: spilling broke SSA: {e}"))?;
        stat_lines.push(format!(
            "spill: k={kr}, {} spills, {} reloads, {} slots, maxlive {} -> {} in {} round(s)",
            s.spills, s.reloads, s.slots, s.maxlive_before, s.maxlive_after, s.rounds
        ));
        spill_summary = Some(SpillSummary {
            k: kr,
            ssa_spills: s.spills,
            ssa_reloads: s.reloads,
            maxlive_before: s.maxlive_before,
            maxlive_after: s.maxlive_after,
            residual_spills: 0,
            slots: s.slots,
        });
    }

    let mut trace: Option<DestructionTrace> = None;
    match cfg.pipeline {
        PipelineSpec::New | PipelineSpec::NewCut => {
            let opts = CoalesceOptions {
                split_strategy: if cfg.pipeline == PipelineSpec::NewCut {
                    SplitStrategy::EdgeCut
                } else {
                    SplitStrategy::RemoveMember
                },
                ..Default::default()
            };
            let timer = PhaseTimer::start("coalesce-new", &am);
            let s = if cfg.verify_each {
                let (s, t) = coalesce_ssa_traced(&mut func, &opts, &mut am);
                trace = Some(t);
                s
            } else {
                coalesce_ssa_managed(&mut func, &opts, &mut am)
            };
            phases.push(timer.finish_with(&am, &s));
            stat_lines.push(format!(
                "new: {} copies, {} filter, {} forest splits, {} local splits, {} B peak",
                s.copies_inserted, s.filter_copies, s.forest_splits, s.local_splits, s.peak_bytes
            ));
        }
        PipelineSpec::Standard => {
            let timer = PhaseTimer::start("destruct-standard", &am);
            let s = if cfg.verify_each {
                let (s, t) = destruct_standard_traced(&mut func, &mut am);
                trace = Some(t);
                s
            } else {
                destruct_standard_with(&mut func, &mut am)
            };
            phases.push(timer.finish_with(&am, &s));
            stat_lines.push(format!(
                "standard: {} copies, {} cycle temps",
                s.copies_inserted, s.cycle_temps
            ));
        }
        PipelineSpec::Sreedhar => {
            let timer = PhaseTimer::start("sreedhar-i", &am);
            let s = if cfg.verify_each {
                let (s, t) = destruct_sreedhar_i_traced(&mut func);
                trace = Some(t);
                s
            } else {
                destruct_sreedhar_i(&mut func)
            };
            phases.push(timer.finish_with(&am, &s));
            stat_lines.push(format!(
                "sreedhar-i: {} isolation copies",
                s.copies_inserted
            ));
        }
        PipelineSpec::Briggs | PipelineSpec::BriggsStar => {
            let timer = PhaseTimer::start("webs", &am);
            let w = if cfg.verify_each {
                let (w, t) = destruct_via_webs_traced(&mut func);
                trace = Some(t);
                w
            } else {
                destruct_via_webs(&mut func)
            };
            phases.push(timer.finish_with(&am, &w));
            let mode = if cfg.pipeline == PipelineSpec::Briggs {
                GraphMode::Full
            } else {
                GraphMode::Restricted
            };
            let timer = PhaseTimer::start("briggs-coalesce", &am);
            let s = coalesce_copies_managed(
                &mut func,
                &BriggsOptions {
                    mode,
                    ..Default::default()
                },
                &mut am,
            );
            phases.push(timer.finish_with(&am, &s));
            stat_lines.push(format!(
                "{}: {} removed, {} remaining, {} passes, {} B peak matrix",
                cfg.pipeline.label(),
                s.copies_removed,
                s.copies_remaining,
                s.passes.len(),
                s.peak_matrix_bytes()
            ));
        }
    }

    if let Some(trace) = &trace {
        // --verify-each: lint the destructed function and audit the
        // run's congruence classes and Waiting copies independently.
        let mut fresh = AnalysisManager::new();
        let mut report = lint_function(&func, &mut fresh, LintStage::Final);
        report.diagnostics.extend(audit_destruction(trace));
        if report.has_errors() {
            return Err(format!(
                "--verify-each: destruction pipeline '{}' failed the lint suite\n{}",
                cfg.pipeline.label(),
                report.render_text(&func)
            ));
        }
        if cfg.deny_warnings && report.warning_count() > 0 {
            return Err(format!(
                "--verify-each: destruction pipeline '{}' emitted {} warning(s) \
                 under --deny-warnings\n{}",
                cfg.pipeline.label(),
                report.warning_count(),
                report.render_text(&func)
            ));
        }
        stat_lines.push(format!(
            "verify-each: destruction audit clean ({} warning(s))",
            report.warning_count()
        ));
    }
    if cfg.simplify {
        let timer = PhaseTimer::start("simplify-cfg", &am);
        simplify_cfg_with(&mut func, &mut am);
        phases.push(timer.finish(&am));
    }
    let compile_time = t0.elapsed();
    stat_lines.push(format!(
        "{} phis inserted, {} copies folded during SSA; {} static copies in output; \
         compiled in {:.1} us",
        ssa_stats.phis_inserted,
        ssa_stats.copies_folded,
        func.static_copy_count(),
        compile_time.as_secs_f64() * 1e6
    ));

    let alloc_k = cfg.k_registers.map(|k| k as usize).or(cfg.alloc);
    if let Some(k) = alloc_k {
        let timer = PhaseTimer::start("allocate", &am);
        let alloc = allocate_managed(
            &mut func,
            &AllocOptions {
                registers: k,
                ..Default::default()
            },
            &mut am,
        )
        .map_err(|e| format!("allocation failed: {e}"))?;
        phases.push(timer.finish(&am));
        stat_lines.push(format!(
            "allocated {k} registers, {} spilled in {} rounds",
            alloc.spilled.len(),
            alloc.rounds
        ));
        if let Some(summary) = spill_summary.as_mut() {
            summary.residual_spills = alloc.spilled.len();
            summary.slots = func.spill_slot_count();
            // Certify the hard bound from the program text alone: the
            // auditor recomputes liveness and checks every point fits in
            // k registers with no clashes, and the spill code obeys the
            // one-slot-one-value discipline.
            let diags = audit_allocation(&func, &alloc.coloring, summary.k, summary.slots);
            if !diags.is_empty() {
                return Err(format!(
                    "internal: k={k} allocation failed its audit with {} violation(s); first: {}",
                    diags.len(),
                    diags[0]
                ));
            }
            stat_lines.push(format!(
                "audit: allocation certified for k={k} ({} slot(s))",
                summary.slots
            ));
        }
    }

    Ok(FunctionOutcome {
        func,
        phases,
        opt_summary,
        stat_lines,
        analysis_peak_bytes: am.peak_bytes(),
        compile_time,
        maxlive,
        spill: spill_summary,
    })
}

/// One batch-compiled module: per-function outcomes in module order plus
/// the pool timing.
#[derive(Clone, Debug)]
pub struct ModuleOutcome {
    /// Outcomes, index-aligned with the input module's functions.
    pub functions: Vec<FunctionOutcome>,
    /// Wall/cpu timing of the batch.
    pub timing: BatchTiming,
}

impl ModuleOutcome {
    /// The rewritten functions reassembled as a module (names were
    /// unique on input and compilation never renames).
    pub fn into_module(self) -> Module {
        Module::from_functions(self.functions.into_iter().map(|o| o.func).collect())
            .expect("compilation preserves the input module's unique names")
    }

    /// Phase records summed by label across all functions.
    pub fn merged_phases(&self) -> Vec<PhaseRecord> {
        let per: Vec<Vec<PhaseRecord>> = self.functions.iter().map(|o| o.phases.clone()).collect();
        merge_phases(&per)
    }

    /// Optimiser summaries merged by pass name: applications and
    /// instruction deltas summed, rounds reported as the maximum.
    pub fn merged_summary(&self) -> Option<RunSummary> {
        merge_summaries(self.functions.iter())
    }

    /// Peak analysis-cache bytes over the workers (they do not share a
    /// cache, so the batch's footprint is the largest single one).
    pub fn analysis_peak_bytes(&self) -> usize {
        self.functions
            .iter()
            .map(|o| o.analysis_peak_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Merge optimiser summaries by pass name across function outcomes:
/// applications and instruction deltas summed, rounds reported as the
/// maximum. Shared by [`ModuleOutcome`] and
/// [`crate::recover::BatchOutcome`].
pub fn merge_summaries<'a>(
    outcomes: impl Iterator<Item = &'a FunctionOutcome>,
) -> Option<RunSummary> {
    let mut merged: Option<RunSummary> = None;
    for o in outcomes {
        let Some(s) = &o.opt_summary else { continue };
        let m = merged.get_or_insert(RunSummary {
            rounds: 0,
            passes: Vec::new(),
        });
        m.rounds = m.rounds.max(s.rounds);
        for p in &s.passes {
            match m.passes.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.applications += p.applications;
                    q.insts_removed += p.insts_removed;
                }
                None => m.passes.push(p.clone()),
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::compile_module as compile_module_req;

    fn module_of(n: usize) -> Module {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!(
                "fn f{i}(n) {{ let s = {i}; for j = 0 to n {{ s = s + j * {}; }} return s; }}\n",
                i + 1
            ));
        }
        fcc_frontend::compile_module(&src).unwrap()
    }

    #[test]
    fn parallel_output_matches_serial_byte_for_byte() {
        let req = CompileRequest::new().opt(true);
        let serial = compile_module_req(module_of(12), &req.clone().jobs(1))
            .unwrap()
            .into_module_outcome()
            .unwrap();
        let parallel = compile_module_req(module_of(12), &req.jobs(4))
            .unwrap()
            .into_module_outcome()
            .unwrap();
        assert_eq!(
            serial.clone().into_module().to_string(),
            parallel.clone().into_module().to_string()
        );
        assert_eq!(serial.merged_phases().len(), parallel.merged_phases().len());
    }

    #[test]
    fn every_pipeline_spec_compiles_a_module() {
        for spec in PipelineSpec::ALL {
            let req = CompileRequest::new()
                .pipeline(spec)
                .fold(!spec.needs_no_fold())
                .verify_each(true)
                .jobs(2);
            let out = compile_module_req(module_of(3), &req)
                .map(|b| b.into_module_outcome().expect("no failures"))
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            for o in &out.functions {
                assert!(!o.func.has_phis(), "{spec}: phis left");
            }
        }
    }

    #[test]
    fn merged_summary_accumulates_pass_applications() {
        let req = CompileRequest::new().opt(true).jobs(3);
        let out = compile_module_req(module_of(6), &req)
            .unwrap()
            .into_module_outcome()
            .unwrap();
        let merged = out.merged_summary().expect("opt ran");
        assert!(!merged.passes.is_empty());
        let per_fn: usize = out
            .functions
            .iter()
            .filter_map(|o| o.opt_summary.as_ref())
            .flat_map(|s| s.passes.iter().map(|p| p.applications))
            .sum();
        let total: usize = merged.passes.iter().map(|p| p.applications).sum();
        assert_eq!(per_fn, total);
    }

    #[test]
    fn k_registers_spills_allocates_and_audits() {
        let module = module_of(4);
        for k in [4u32, 8] {
            let req = CompileRequest::new().opt(true).k_registers(Some(k));
            let out = compile_module_req(module.clone(), &req)
                .unwrap()
                .into_module_outcome()
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            for o in &out.functions {
                let s = o.spill.expect("spill summary present");
                assert_eq!(s.k, k);
                assert_eq!(s.slots, o.func.spill_slot_count());
                assert!(
                    o.stat_lines
                        .iter()
                        .any(|l| l.contains("audit: allocation certified")),
                    "k={k}: audit line missing: {:?}",
                    o.stat_lines
                );
            }
        }
    }

    #[test]
    fn pipeline_spec_parses_all_cli_spellings() {
        for s in [
            "new",
            "new-cut",
            "standard",
            "sreedhar",
            "briggs",
            "briggs-star",
        ] {
            let spec: PipelineSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
        assert!("nope".parse::<PipelineSpec>().is_err());
    }
}
