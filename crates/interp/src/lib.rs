//! # fcc-interp — a reference interpreter for the IR
//!
//! Two jobs:
//!
//! 1. **Correctness oracle.** The interpreter executes φ-nodes with proper
//!    parallel edge semantics, so a function can be run *in SSA form* to
//!    produce reference behaviour. Every SSA-destruction algorithm in this
//!    workspace (Standard, the paper's New algorithm, Briggs, Briggs\*)
//!    must produce a φ-free program with identical observable behaviour —
//!    the integration and property tests check exactly that.
//! 2. **Dynamic-copy accounting.** Table 4 of the paper counts the copy
//!    instructions *executed* by each algorithm's output; the interpreter
//!    counts them during execution.
//!
//! Semantics: all values are `i64`; division is total (x/0 = 0); memory is
//! a caller-provided flat array of words, zero-initialised by [`run`] and
//! [`run_with`]. Execution is bounded by a fuel budget so that a
//! miscompiled loop cannot hang the test suite.
//!
//! ## Out-of-bounds memory semantics
//!
//! This paragraph is the **single normative definition** of out-of-bounds
//! behaviour for the whole workspace; the `mem-oob-access` lint in
//! `fcc-alias` mirrors it exactly and nothing else redefines it. A `load`
//! or `store` whose address `a` satisfies `a < 0 || a as usize >=
//! memory.len()` **traps**: execution stops immediately with
//! [`ExecError::OutOfBounds`] carrying the offending address, and no
//! partial memory image or return value is observable. Addresses are
//! never wrapped, clamped, or grown; in-bounds accesses read and write
//! `memory[a as usize]` directly.

use std::fmt;

use fcc_ir::{Block, Function, InstKind, Value};

/// Why execution stopped without returning.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The fuel budget was exhausted — the program ran too long (or a
    /// miscompile produced an infinite loop).
    OutOfFuel,
    /// Control reached a block without a terminator.
    MissingTerminator(Block),
    /// A φ had no argument for the edge actually taken.
    PhiMissingEdge(Block, Block),
    /// `param i` requested an argument that was not supplied.
    MissingArgument(usize),
    /// A `load` or `store` addressed a word outside `[0, words)` — see
    /// the module docs for the normative out-of-bounds rule.
    OutOfBounds {
        /// The offending address.
        addr: i64,
        /// The memory size in words at the time of the access.
        words: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "fuel exhausted"),
            ExecError::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
            ExecError::PhiMissingEdge(p, b) => {
                write!(f, "phi in {b} has no argument for edge from {p}")
            }
            ExecError::MissingArgument(i) => write!(f, "missing argument {i}"),
            ExecError::OutOfBounds { addr, words } => {
                write!(
                    f,
                    "out-of-bounds memory access: address {addr} outside [0, {words})"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The observable result of a run: what the correctness oracle compares.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// The returned value (`None` for a bare `return`).
    pub ret: Option<i64>,
    /// Final memory image.
    pub memory: Vec<i64>,
    /// Copy instructions executed — the paper's *dynamic copies* metric.
    pub dynamic_copies: u64,
    /// Total instructions executed (φs count once per evaluation).
    pub executed: u64,
}

impl Outcome {
    /// Observable behaviour only (return value + memory), ignoring the
    /// instruction counters: two correct translations of one program must
    /// agree on this even though their copy counts differ.
    pub fn behavior(&self) -> (Option<i64>, &[i64]) {
        (self.ret, &self.memory)
    }
}

/// Execution parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Words of flat memory available to `load`/`store`.
    pub memory_words: usize,
    /// Maximum instructions to execute before giving up.
    pub fuel: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            memory_words: 4096,
            fuel: 10_000_000,
        }
    }
}

/// Run `func` on `args` with the default configuration.
///
/// # Errors
/// See [`ExecError`].
pub fn run(func: &Function, args: &[i64]) -> Result<Outcome, ExecError> {
    run_with(func, args, &RunConfig::default())
}

/// Run `func` on `args` with an explicit configuration. Initial memory is
/// zeroed; use [`run_with_memory`] to seed it.
///
/// # Errors
/// See [`ExecError`].
pub fn run_with(func: &Function, args: &[i64], cfg: &RunConfig) -> Result<Outcome, ExecError> {
    run_with_memory(func, args, vec![0; cfg.memory_words], cfg.fuel)
}

/// Run `func` on `args` with caller-provided initial memory and fuel.
///
/// # Errors
/// See [`ExecError`].
pub fn run_with_memory(
    func: &Function,
    args: &[i64],
    mut memory: Vec<i64>,
    fuel: u64,
) -> Result<Outcome, ExecError> {
    let mut regs: Vec<i64> = vec![0; func.num_values()];
    // Spill slots are a separate zero-initialised storage space, disjoint
    // from `memory` and excluded from `Outcome::behavior()`: spilling is a
    // register-allocation artefact and must never change what a program
    // observably computes. Sized by pre-scan, so slot accesses never trap.
    let mut slots: Vec<i64> = vec![0; func.spill_slot_count() as usize];
    let mut dynamic_copies = 0u64;
    let mut executed = 0u64;
    let mut remaining = fuel;

    fn read(regs: &[i64], v: Value) -> i64 {
        regs[v.index()]
    }

    let mut block = func.entry();
    let mut prev: Option<Block> = None;

    'blocks: loop {
        // Evaluate the φs at the head of the block as one parallel
        // assignment reading the *pre-entry* register state.
        let mut phi_writes: Vec<(Value, i64)> = Vec::new();
        let insts = func.block_insts(block);
        let mut idx = 0;
        while idx < insts.len() {
            let data = func.inst(insts[idx]);
            let args_list = match &data.kind {
                InstKind::Phi { args } => args,
                _ => break,
            };
            let p = prev.expect("phi in entry block");
            let arg = args_list
                .iter()
                .find(|a| a.pred == p)
                .ok_or(ExecError::PhiMissingEdge(p, block))?;
            phi_writes.push((data.dst.expect("phi defines"), read(&regs, arg.value)));
            executed += 1;
            remaining = remaining.checked_sub(1).ok_or(ExecError::OutOfFuel)?;
            idx += 1;
        }
        for (dst, v) in phi_writes {
            regs[dst.index()] = v;
        }

        // Straight-line execution of the rest of the block.
        while idx < insts.len() {
            let data = func.inst(insts[idx]);
            executed += 1;
            remaining = remaining.checked_sub(1).ok_or(ExecError::OutOfFuel)?;
            match &data.kind {
                InstKind::Phi { .. } => unreachable!("phi after body"),
                InstKind::Param { index } => {
                    let v = *args.get(*index).ok_or(ExecError::MissingArgument(*index))?;
                    regs[data.dst.unwrap().index()] = v;
                }
                InstKind::Const { imm } => regs[data.dst.unwrap().index()] = *imm,
                InstKind::Copy { src } => {
                    dynamic_copies += 1;
                    regs[data.dst.unwrap().index()] = read(&regs, *src);
                }
                InstKind::Unary { op, a } => {
                    regs[data.dst.unwrap().index()] = op.eval(read(&regs, *a));
                }
                InstKind::Binary { op, a, b } => {
                    regs[data.dst.unwrap().index()] = op.eval(read(&regs, *a), read(&regs, *b));
                }
                InstKind::Load { addr } => {
                    let a = read(&regs, *addr);
                    if a < 0 || a as usize >= memory.len() {
                        return Err(ExecError::OutOfBounds {
                            addr: a,
                            words: memory.len(),
                        });
                    }
                    regs[data.dst.unwrap().index()] = memory[a as usize];
                }
                InstKind::Store { addr, val } => {
                    let a = read(&regs, *addr);
                    if a < 0 || a as usize >= memory.len() {
                        return Err(ExecError::OutOfBounds {
                            addr: a,
                            words: memory.len(),
                        });
                    }
                    memory[a as usize] = read(&regs, *val);
                }
                InstKind::Spill { slot, val } => {
                    slots[*slot as usize] = read(&regs, *val);
                }
                InstKind::Reload { slot } => {
                    regs[data.dst.unwrap().index()] = slots[*slot as usize];
                }
                InstKind::Branch {
                    cond,
                    then_dst,
                    else_dst,
                } => {
                    prev = Some(block);
                    block = if read(&regs, *cond) != 0 {
                        *then_dst
                    } else {
                        *else_dst
                    };
                    continue 'blocks;
                }
                InstKind::Jump { dst } => {
                    prev = Some(block);
                    block = *dst;
                    continue 'blocks;
                }
                InstKind::Return { val } => {
                    return Ok(Outcome {
                        ret: val.map(|v| read(&regs, v)),
                        memory,
                        dynamic_copies,
                        executed,
                    });
                }
            }
            idx += 1;
        }
        return Err(ExecError::MissingTerminator(block));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;

    fn go(text: &str, args: &[i64]) -> Outcome {
        run(&parse_function(text).unwrap(), args).unwrap()
    }

    const SEL: &str = "function @sel(1) {
        b0:
            v0 = param 0
            branch v0, b1, b2
        b1:
            v1 = const 111
            jump b3
        b2:
            v2 = const 222
            jump b3
        b3:
            v3 = phi [b1: v1], [b2: v2]
            return v3
        }";

    #[test]
    fn returns_arithmetic() {
        let out = go(
            "function @f(2) {
             b0:
                 v0 = param 0
                 v1 = param 1
                 v2 = mul v0, v1
                 return v2
             }",
            &[6, 7],
        );
        assert_eq!(out.ret, Some(42));
        assert_eq!(out.dynamic_copies, 0);
        assert_eq!(out.executed, 4);
    }

    #[test]
    fn counts_dynamic_copies_per_execution() {
        let out = go(
            "function @loopcopy(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 jump b1
             b1:
                 v2 = phi [b0: v1], [b1: v4]
                 v3 = copy v2
                 v5 = const 1
                 v4 = add v3, v5
                 v6 = lt v4, v0
                 branch v6, b1, b2
             b2:
                 return v4
             }",
            &[5],
        );
        assert_eq!(out.ret, Some(5));
        assert_eq!(out.dynamic_copies, 5, "copy runs once per iteration");
    }

    #[test]
    fn phi_selects_by_incoming_edge() {
        assert_eq!(go(SEL, &[1]).ret, Some(111));
        assert_eq!(go(SEL, &[0]).ret, Some(222));
    }

    #[test]
    fn phis_evaluate_in_parallel() {
        // Swap φs around a loop: (x, y) start at (1, 2) and swap on every
        // backedge; the counter φ also updates in parallel. After the loop
        // has entered the header 3 times, x has seen 1, 2, 1.
        let out = go(
            "function @swap(0) {
             b0:
                 v0 = const 1
                 v1 = const 2
                 v7 = const 0
                 jump b1
             b1:
                 v2 = phi [b0: v0], [b1: v3]
                 v3 = phi [b0: v1], [b1: v2]
                 v8 = phi [b0: v7], [b1: v9]
                 v5 = const 1
                 v9 = add v8, v5
                 v10 = const 3
                 v11 = lt v9, v10
                 branch v11, b1, b2
             b2:
                 return v2
             }",
            &[],
        );
        assert_eq!(out.ret, Some(1));
    }

    #[test]
    fn memory_load_store() {
        let f = parse_function(
            "function @mem(1) {
             b0:
                 v0 = param 0
                 v1 = const 5
                 store v1, v0
                 v2 = load v1
                 return v2
             }",
        )
        .unwrap();
        let out = run(&f, &[99]).unwrap();
        assert_eq!(out.ret, Some(99));
        assert_eq!(out.memory[5], 99);
    }

    #[test]
    fn out_of_range_memory_traps() {
        // Negative address: traps on the store, before the load runs.
        let f = parse_function(
            "function @oob(0) {
             b0:
                 v0 = const -3
                 v1 = const 7
                 store v0, v1
                 v2 = load v0
                 return v2
             }",
        )
        .unwrap();
        let err = run(&f, &[]).unwrap_err();
        assert_eq!(
            err,
            ExecError::OutOfBounds {
                addr: -3,
                words: 4096
            }
        );
        assert!(err.to_string().contains("out-of-bounds"), "{err}");

        // One-past-the-end load traps too; the last word is fine.
        let g = parse_function(
            "function @edge(1) {
             b0:
                 v0 = param 0
                 v1 = load v0
                 return v1
             }",
        )
        .unwrap();
        let err = run_with_memory(&g, &[8], vec![0; 8], 1000).unwrap_err();
        assert_eq!(err, ExecError::OutOfBounds { addr: 8, words: 8 });
        assert_eq!(
            run_with_memory(&g, &[7], vec![0; 8], 1000).unwrap().ret,
            Some(0)
        );
    }

    #[test]
    fn spill_slots_are_disjoint_from_memory() {
        // Slot 5 and memory address 5 must not alias: the spill writes the
        // slot space, the load still sees the store's value.
        let out = go(
            "function @slots(1) {
             b0:
                 v0 = param 0
                 v1 = const 5
                 store v1, v0
                 spill 5, v1
                 v2 = reload 5
                 v3 = load v2
                 v4 = add v3, v2
                 return v4
             }",
            &[40],
        );
        assert_eq!(out.ret, Some(45));
        assert_eq!(out.memory[5], 40, "spill must not touch memory");
    }

    #[test]
    fn reload_of_unspilled_slot_reads_zero() {
        let out = go(
            "function @z(0) {
             b0:
                 v0 = reload 9
                 return v0
             }",
            &[],
        );
        assert_eq!(out.ret, Some(0), "slots are zero-initialised");
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let f = parse_function(
            "function @inf(0) {
             b0:
                 jump b0
             }",
        )
        .unwrap();
        let err = run_with_memory(&f, &[], vec![], 1000).unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
    }

    #[test]
    fn missing_argument_reported() {
        let f = parse_function(
            "function @need(2) {
             b0:
                 v0 = param 1
                 return v0
             }",
        )
        .unwrap();
        assert_eq!(run(&f, &[1]).unwrap_err(), ExecError::MissingArgument(1));
    }

    #[test]
    fn bare_return_yields_none() {
        let out = go("function @n(0) {\nb0:\n return\n}", &[]);
        assert_eq!(out.ret, None);
    }

    #[test]
    fn behavior_ignores_counters() {
        let a = go(SEL, &[1]);
        let mut b = a.clone();
        b.dynamic_copies += 5;
        assert_eq!(a.behavior(), b.behavior());
    }

    #[test]
    fn destructed_program_matches_ssa_reference() {
        // End-to-end smoke: build SSA, destruct with Standard, compare.
        let mut f = parse_function(
            "function @sum(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 v2 = const 0
                 jump b1
             b1:
                 v3 = lt v2, v0
                 branch v3, b2, b3
             b2:
                 v1 = add v1, v2
                 v4 = const 1
                 v2 = add v2, v4
                 jump b1
             b3:
                 return v1
             }",
        )
        .unwrap();
        let reference = run(&f, &[10]).unwrap();
        fcc_ssa::build_ssa(&mut f, fcc_ssa::SsaFlavor::Pruned, true);
        let ssa_out = run(&f, &[10]).unwrap();
        assert_eq!(reference.behavior(), ssa_out.behavior());
        fcc_ssa::destruct_standard(&mut f);
        assert!(!f.has_phis());
        let final_out = run(&f, &[10]).unwrap();
        assert_eq!(reference.behavior(), final_out.behavior());
        assert_eq!(final_out.ret, Some(45));
    }
}
