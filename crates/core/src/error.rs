//! The compile-error taxonomy the fault-tolerant driver reports.
//!
//! Three things can go wrong while compiling one function, and the
//! degradation ladder treats them uniformly but reports them distinctly:
//!
//! * [`CompileError::Panic`] — a pass crashed. The panic was caught at
//!   the per-function `catch_unwind` boundary; the offending pass comes
//!   from the thread-local label maintained by
//!   [`fcc_analysis::fuel::set_pass`] (the same label stream the
//!   `--verify-each` machinery and the phase timers use).
//! * [`CompileError::FuelExhausted`] — an iterative algorithm crossed
//!   the installed [`fcc_analysis::Fuel`] budget. Recognised by
//!   downcasting the caught panic payload to
//!   [`fcc_analysis::FuelExhausted`], so a hang and a crash share one
//!   containment path but never one diagnosis.
//! * [`CompileError::DeadlineExceeded`] — the request's wall-clock
//!   deadline passed while this function was compiling. Recognised by
//!   downcasting to [`fcc_analysis::DeadlineExceeded`] (installed by
//!   `fcc_analysis::fuel::with_deadline`, checked at the same
//!   checkpoints as fuel). Unlike fuel this is *not* a deterministic
//!   property of the function — the same input may or may not miss a
//!   deadline depending on machine load — so callers must never cache a
//!   deadline-failed result.
//! * [`CompileError::Rejected`] — the compile returned an error of its
//!   own accord: a verifier/lint violation (possibly attributed to a
//!   pass by `PassManager::run_verified`), a failed destruction audit,
//!   or an unsupported configuration.

use fcc_analysis::{DeadlineExceeded, FuelExhausted};

/// Why one function failed to compile. See the module docs for the
/// taxonomy.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// A pass panicked; `payload` is the stringified panic message.
    Panic { pass: String, payload: String },
    /// The fuel budget ran out; `spent` is the step count at the stop.
    FuelExhausted { pass: String, spent: u64 },
    /// The request's wall-clock deadline passed mid-compile;
    /// `budget_ms` is the configured budget (never a measurement, so
    /// the rendered error is deterministic for a given request).
    DeadlineExceeded { pass: String, budget_ms: u64 },
    /// The compile pipeline itself reported an error (verifier, lint,
    /// audit, or configuration).
    Rejected { detail: String },
}

impl CompileError {
    /// Classify a payload caught by `catch_unwind`: a typed
    /// [`FuelExhausted`] becomes [`CompileError::FuelExhausted`];
    /// anything else becomes [`CompileError::Panic`] attributed to
    /// `pass_hint` (the thread's current pass label at catch time).
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>, pass_hint: &str) -> CompileError {
        let payload = match payload.downcast::<DeadlineExceeded>() {
            Ok(de) => {
                return CompileError::DeadlineExceeded {
                    pass: de.pass.clone(),
                    budget_ms: de.budget_ms,
                }
            }
            Err(payload) => payload,
        };
        match payload.downcast::<FuelExhausted>() {
            Ok(fe) => CompileError::FuelExhausted {
                pass: fe.pass.clone(),
                spent: fe.spent,
            },
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                CompileError::Panic {
                    pass: pass_hint.to_string(),
                    payload: msg,
                }
            }
        }
    }

    /// The offending pass, when the error carries one.
    pub fn pass(&self) -> Option<&str> {
        match self {
            CompileError::Panic { pass, .. }
            | CompileError::FuelExhausted { pass, .. }
            | CompileError::DeadlineExceeded { pass, .. } => Some(pass),
            CompileError::Rejected { .. } => None,
        }
    }

    /// Short machine-readable class name
    /// (`panic` / `fuel` / `deadline` / `rejected`).
    pub fn kind(&self) -> &'static str {
        match self {
            CompileError::Panic { .. } => "panic",
            CompileError::FuelExhausted { .. } => "fuel",
            CompileError::DeadlineExceeded { .. } => "deadline",
            CompileError::Rejected { .. } => "rejected",
        }
    }

    /// Is this a missed wall-clock deadline? Deadline failures are the
    /// one error class that is *not* a deterministic function of the
    /// input, so caches must skip results carrying one.
    pub fn is_deadline(&self) -> bool {
        matches!(self, CompileError::DeadlineExceeded { .. })
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Panic { pass, payload } => {
                write!(f, "panic in pass '{pass}': {payload}")
            }
            CompileError::FuelExhausted { pass, spent } => {
                write!(f, "fuel exhausted in pass '{pass}' after {spent} step(s)")
            }
            CompileError::DeadlineExceeded { pass, budget_ms } => {
                write!(
                    f,
                    "deadline exceeded in pass '{pass}' (budget {budget_ms}ms)"
                )
            }
            // Rejections carry pre-formatted pipeline diagnostics (lint
            // reports span lines); pass them through verbatim.
            CompileError::Rejected { detail } => f.write_str(detail),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn fuel_payloads_are_recognised_by_type() {
        let fuel = fcc_analysis::Fuel::limited(1);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            fcc_analysis::fuel::set_pass("range-fold");
            fcc_analysis::fuel::with_fuel(&fuel, || fcc_analysis::fuel::checkpoint(5))
        }))
        .expect_err("must exhaust");
        let e = CompileError::from_panic(payload, "whatever");
        match &e {
            CompileError::FuelExhausted { pass, spent } => {
                assert_eq!(pass, "range-fold");
                assert_eq!(*spent, 5);
            }
            other => panic!("expected FuelExhausted, got {other:?}"),
        }
        assert_eq!(e.kind(), "fuel");
        assert_eq!(e.pass(), Some("range-fold"));
        assert!(e.to_string().contains("'range-fold'"));
    }

    #[test]
    fn deadline_payloads_are_recognised_by_type() {
        let payload = catch_unwind(AssertUnwindSafe(|| {
            fcc_analysis::fuel::set_pass("coalesce-new");
            fcc_analysis::fuel::with_deadline(Some(fcc_analysis::Deadline::after_ms(0)), || {
                fcc_analysis::fuel::checkpoint(1)
            })
        }))
        .expect_err("an expired deadline must unwind");
        let e = CompileError::from_panic(payload, "whatever");
        match &e {
            CompileError::DeadlineExceeded { pass, budget_ms } => {
                assert_eq!(pass, "coalesce-new");
                assert_eq!(*budget_ms, 0);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(e.kind(), "deadline");
        assert!(e.is_deadline());
        assert_eq!(e.pass(), Some("coalesce-new"));
        assert_eq!(
            e.to_string(),
            "deadline exceeded in pass 'coalesce-new' (budget 0ms)"
        );
    }

    #[test]
    fn str_and_string_panics_become_panic_errors() {
        let payload = catch_unwind(|| panic!("plain literal")).expect_err("panics");
        let e = CompileError::from_panic(payload, "coalesce-new");
        assert_eq!(e.kind(), "panic");
        assert_eq!(e.pass(), Some("coalesce-new"));
        assert!(e.to_string().contains("coalesce-new"));
        assert!(e.to_string().contains("plain literal"));

        let formatted = catch_unwind(|| panic!("with {}", 42)).expect_err("panics");
        let e = CompileError::from_panic(formatted, "webs");
        assert!(e.to_string().contains("with 42"));
    }
}
