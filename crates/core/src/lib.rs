//! # fcc-core — fast copy coalescing and live-range identification
//!
//! The reference implementation of **Budimlić, Cooper, Harvey, Kennedy,
//! Oberg, Reeves: "Fast Copy Coalescing and Live-Range Identification"
//! (PLDI 2002)**: an `O(n·α(n))` SSA-to-CFG conversion that coalesces
//! φ-related copies *without building an interference graph*, using only
//! liveness and dominance information.
//!
//! * [`dforest::DominanceForest`] — the paper's new data structure
//!   (Definition 3.1, Figure 1): dominator-tree paths between the
//!   definition blocks of a candidate congruence class, collapsed so
//!   interference need only be checked along forest edges (Lemma 3.1).
//! * [`coalesce::coalesce_ssa`] — the four-step algorithm (Sections
//!   3.1–3.6): optimistic φ-web unioning with five liveness filters,
//!   forest-walk interference resolution, local (in-block) interference
//!   checking, and renaming with Waiting-array copy insertion that
//!   handles the lost-copy, swap, and virtual-swap problems.
//!
//! The classical interference-graph coalescers the paper compares against
//! (Briggs and the improved Briggs\*) live in `fcc-regalloc`; the naive
//! "Standard" φ instantiation lives in `fcc-ssa`.
//!
//! ## Example
//!
//! ```
//! use fcc_ir::parse::parse_function;
//! use fcc_core::coalesce_ssa;
//!
//! // i = i + 1 loop in SSA: the φ-web {v1, v2, v3} is interference-free
//! // and collapses to a single name — no copies at all.
//! let mut f = parse_function(
//!     "function @count(1) {
//!      b0:
//!          v0 = param 0
//!          v1 = const 0
//!          jump b1
//!      b1:
//!          v2 = phi [b0: v1], [b1: v3]
//!          v4 = const 1
//!          v3 = add v2, v4
//!          v5 = lt v3, v0
//!          branch v5, b1, b2
//!      b2:
//!          return v3
//!      }",
//! ).unwrap();
//! let stats = coalesce_ssa(&mut f);
//! assert!(!f.has_phis());
//! assert_eq!(stats.copies_inserted, 0);
//! ```

pub mod coalesce;
pub mod dforest;
pub mod error;
pub mod mincut;

pub use coalesce::{
    coalesce_prepared, coalesce_ssa, coalesce_ssa_managed, coalesce_ssa_traced, coalesce_ssa_with,
    CoalesceOptions, CoalesceStats, SplitHeuristic, SplitStrategy,
};
pub use dforest::{DfNode, DominanceForest};
pub use error::CompileError;

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;
    use fcc_ir::Function;
    use fcc_ssa::{build_ssa, destruct_standard, verify_ssa, SsaFlavor};

    /// Run the full New pipeline on SSA text and return the function.
    fn coalesced(text: &str) -> (Function, CoalesceStats) {
        let mut f = parse_function(text).unwrap();
        verify_ssa(&f).expect("test input must be regular SSA");
        let reference = fcc_interp::run(&f, &[7]).ok();
        let stats = coalesce_ssa(&mut f);
        assert!(!f.has_phis(), "all phis removed");
        verify_function(&f).expect("structurally valid output");
        if let Some(r) = reference {
            let out = fcc_interp::run(&f, &[7]).expect("coalesced output runs");
            assert_eq!(r.behavior(), out.behavior(), "semantics preserved:\n{f}");
        }
        (f, stats)
    }

    #[test]
    fn loop_counter_needs_no_copies() {
        let (f, stats) = coalesced(
            "function @count(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 jump b1
             b1:
                 v2 = phi [b0: v1], [b1: v3]
                 v4 = const 1
                 v3 = add v2, v4
                 v5 = lt v3, v0
                 branch v5, b1, b2
             b2:
                 return v3
             }",
        );
        assert_eq!(stats.copies_inserted, 0);
        assert_eq!(f.static_copy_count(), 0);
        assert_eq!(stats.phis_removed, 1);
    }

    #[test]
    fn diamond_join_needs_no_copies() {
        let (f, stats) = coalesced(
            "function @sel(1) {
             b0:
                 v0 = param 0
                 branch v0, b1, b2
             b1:
                 v1 = const 111
                 jump b3
             b2:
                 v2 = const 222
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }",
        );
        assert_eq!(stats.copies_inserted, 0);
        assert_eq!(f.static_copy_count(), 0);
    }

    #[test]
    fn interfering_arg_gets_exactly_one_copy() {
        // v1 feeds the φ but is also used after it: v1 is live-in at b3,
        // so φ-web coalescing must keep v1 separate (filter test 1) and
        // insert one copy on the b1 edge.
        let (f, stats) = coalesced(
            "function @interf(1) {
             b0:
                 v0 = param 0
                 v1 = const 5
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 v2 = const 9
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 v4 = add v3, v1
                 return v4
             }",
        );
        assert_eq!(stats.filter_copies, 1);
        assert_eq!(stats.copies_inserted, 1);
        assert_eq!(f.static_copy_count(), 1);
    }

    /// The paper's Figure 3: the virtual swap problem. After copy folding
    /// the two φs read (a1, b1) and (b1, a1); a1 and b1 are simultaneously
    /// live at the end of b0, so they cannot be coalesced — copies must be
    /// inserted, and the renaming-exposed second interference (Figure 4c)
    /// must be resolved by the parallel-copy treatment.
    const VIRTUAL_SWAP: &str = "
        function @vswap(1) {
        b0:
            v0 = param 0
            v1 = const 60
            v2 = const 2
            branch v0, b1, b2
        b1:
            jump b3
        b2:
            jump b3
        b3:
            v3 = phi [b1: v1], [b2: v2]
            v4 = phi [b1: v2], [b2: v1]
            v5 = div v3, v4
            return v5
        }";

    #[test]
    fn virtual_swap_is_correct_both_ways() {
        for arg in [0i64, 1] {
            let mut f = parse_function(VIRTUAL_SWAP).unwrap();
            let reference = fcc_interp::run(&f, &[arg]).unwrap();
            let expected = if arg != 0 { 30 } else { 0 };
            assert_eq!(reference.ret, Some(expected));
            coalesce_ssa(&mut f);
            let out = fcc_interp::run(&f, &[arg]).unwrap();
            assert_eq!(reference.behavior(), out.behavior(), "arg={arg}\n{f}");
        }
    }

    #[test]
    fn virtual_swap_beats_standard_on_copies() {
        let mut f_new = parse_function(VIRTUAL_SWAP).unwrap();
        let new_stats = coalesce_ssa(&mut f_new);
        let mut f_std = parse_function(VIRTUAL_SWAP).unwrap();
        let std_stats = destruct_standard(&mut f_std);
        assert!(
            new_stats.copies_inserted < std_stats.copies_inserted,
            "new {} < standard {}",
            new_stats.copies_inserted,
            std_stats.copies_inserted
        );
        // The paper's analysis: one side is picked for copy insertion;
        // some copies remain, but fewer than the naive four.
        assert!(new_stats.copies_inserted >= 1);
    }

    /// The swap problem proper: two φs exchanging values around a loop.
    const SWAP_LOOP: &str = "
        function @swap(1) {
        b0:
            v0 = param 0
            v1 = const 1
            v2 = const 2
            v3 = const 0
            jump b1
        b1:
            v4 = phi [b0: v1], [b2: v5]
            v5 = phi [b0: v2], [b2: v4]
            v6 = phi [b0: v3], [b2: v7]
            v8 = const 1
            v7 = add v6, v8
            v9 = lt v7, v0
            branch v9, b2, b3
        b2:
            jump b1
        b3:
            v10 = mul v4, v7
            return v10
        }";

    #[test]
    fn swap_loop_preserved_for_all_iteration_counts() {
        for arg in 0..6i64 {
            let mut f = parse_function(SWAP_LOOP).unwrap();
            let reference = fcc_interp::run(&f, &[arg]).unwrap();
            coalesce_ssa(&mut f);
            let out = fcc_interp::run(&f, &[arg]).unwrap();
            assert_eq!(reference.behavior(), out.behavior(), "arg={arg}\n{f}");
        }
    }

    #[test]
    fn lost_copy_shape_preserved() {
        // φ result used after the loop: the backedge is critical and gets
        // split; the copy lands on the split block.
        let src = "
            function @lost(1) {
            b0:
                v0 = param 0
                v1 = const 0
                jump b1
            b1:
                v2 = phi [b0: v1], [b1: v3]
                v4 = const 1
                v3 = add v2, v4
                v5 = lt v3, v0
                branch v5, b1, b2
            b2:
                return v2
            }";
        for arg in [0i64, 1, 5] {
            let mut f = parse_function(src).unwrap();
            let reference = fcc_interp::run(&f, &[arg]).unwrap();
            let stats = coalesce_ssa(&mut f);
            assert!(stats.edges_split >= 1);
            let out = fcc_interp::run(&f, &[arg]).unwrap();
            assert_eq!(reference.behavior(), out.behavior(), "arg={arg}\n{f}");
        }
    }

    #[test]
    fn full_pipeline_from_cfg_beats_standard() {
        // Pre-SSA program with copies: frontend-style code. The pipeline
        // (fold copies during construction, then New) must produce fewer
        // static copies than Standard instantiation.
        let src = "
            function @pipe(1) {
            b0:
                v0 = param 0
                v1 = const 0
                v2 = const 0
                jump b1
            b1:
                v3 = lt v2, v0
                branch v3, b2, b3
            b2:
                v4 = copy v1
                v1 = add v4, v2
                v5 = const 1
                v2 = add v2, v5
                jump b1
            b3:
                return v1
            }";
        let run_pipeline = |coalesce: bool| -> (usize, Option<i64>) {
            let mut f = parse_function(src).unwrap();
            build_ssa(&mut f, SsaFlavor::Pruned, true);
            verify_ssa(&f).unwrap();
            if coalesce {
                coalesce_ssa(&mut f);
            } else {
                destruct_standard(&mut f);
            }
            verify_function(&f).unwrap();
            let out = fcc_interp::run(&f, &[6]).unwrap();
            (f.static_copy_count(), out.ret)
        };
        let (new_copies, new_ret) = run_pipeline(true);
        let (std_copies, std_ret) = run_pipeline(false);
        assert_eq!(new_ret, std_ret);
        assert_eq!(new_ret, Some(15)); // sum 0..5
        assert!(
            new_copies <= std_copies,
            "new {new_copies} <= std {std_copies}"
        );
        assert_eq!(new_copies, 0, "the accumulator web is interference-free");
    }

    #[test]
    fn filters_off_still_correct() {
        let opts = CoalesceOptions {
            early_filters: false,
            ..Default::default()
        };
        for src in [VIRTUAL_SWAP, SWAP_LOOP] {
            for arg in [0i64, 1, 3] {
                let mut f = parse_function(src).unwrap();
                let reference = fcc_interp::run(&f, &[arg]).unwrap();
                coalesce_ssa_with(&mut f, &opts);
                assert!(!f.has_phis());
                let out = fcc_interp::run(&f, &[arg]).unwrap();
                assert_eq!(reference.behavior(), out.behavior(), "arg={arg}\n{f}");
            }
        }
    }

    #[test]
    fn all_split_heuristics_correct() {
        for h in [
            SplitHeuristic::CopyCost,
            SplitHeuristic::AlwaysChild,
            SplitHeuristic::AlwaysParent,
        ] {
            let opts = CoalesceOptions {
                split_heuristic: h,
                ..Default::default()
            };
            for arg in [0i64, 2, 5] {
                let mut f = parse_function(SWAP_LOOP).unwrap();
                let reference = fcc_interp::run(&f, &[arg]).unwrap();
                coalesce_ssa_with(&mut f, &opts);
                let out = fcc_interp::run(&f, &[arg]).unwrap();
                assert_eq!(reference.behavior(), out.behavior(), "{h:?} arg={arg}\n{f}");
            }
        }
    }

    #[test]
    fn phi_free_function_is_untouched() {
        let mut f = parse_function(
            "function @id(1) {
             b0:
                 v0 = param 0
                 return v0
             }",
        )
        .unwrap();
        let before = f.to_string();
        let stats = coalesce_ssa(&mut f);
        assert_eq!(stats.copies_inserted, 0);
        assert_eq!(before, f.to_string());
    }

    #[test]
    fn stats_report_no_interference_graph_scale_memory() {
        // peak_bytes must scale roughly linearly, not quadratically: build
        // a long chain of blocks each defining a value into one φ-web.
        let mut text =
            String::from("function @chain(1) {\nb0:\n v0 = param 0\n v1 = const 0\n jump b1\n");
        let n = 50;
        for i in 1..n {
            text.push_str(&format!(
                "b{i}:\n v{} = add v1, v0\n jump b{}\n",
                i + 1,
                i + 1
            ));
        }
        text.push_str(&format!("b{n}:\n return v{n}\n}}\n"));
        let mut f = parse_function(&text).unwrap();
        let stats = coalesce_ssa(&mut f);
        // Universe ~n values, ~n blocks: generous linear bound with a
        // fat constant, far below the n²/2-bit matrix a Chaitin coalescer
        // would clear.
        assert!(
            stats.peak_bytes < 200_000,
            "peak {} bytes",
            stats.peak_bytes
        );
    }
}
