//! The dominance forest (Definition 3.1, Figure 1).
//!
//! Given a set `S` of SSA values, the dominance forest collapses the
//! dominator-tree paths between their definition blocks: there is an edge
//! `u → v` iff `u`'s block strictly dominates `v`'s with no other member
//! in between. Lemma 3.1 then licenses checking interference along forest
//! edges *only*: if a parent does not interfere with its child, it cannot
//! interfere with anything below that child. This replaces the quadratic
//! pairwise comparison inside a candidate congruence class with a linear
//! scan.
//!
//! Construction is exactly the paper's Figure 1: number the dominator
//! tree in depth-first preorder, record each node's maximum descendant
//! preorder (Tarjan's O(1) ancestry trick, computed once per function by
//! [`fcc_analysis::DomTree`]), sort the members by preorder (the paper
//! uses a radix sort; so do we), and sweep once with a stack rooted at a
//! virtual root.
//!
//! One extension: the coalescer may hold several members defined in the
//! *same* block (classes merge transitively across φs, so Definition
//! 3.1's distinct-blocks premise can be violated). Members of one block
//! are chained parent→child in definition order, which is precisely the
//! shape the Figure 2 walk expects for its "same defining block" case.

use fcc_analysis::DomTree;
use fcc_ir::{Block, Value};

/// One member of a dominance forest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DfNode {
    /// The SSA value this node stands for.
    pub value: Value,
    /// The block containing the value's definition.
    pub block: Block,
    /// Position of the definition within its block (instruction index).
    pub def_pos: u32,
    /// Index of the parent node within the forest, if any.
    pub parent: Option<usize>,
    /// Indices of child nodes.
    pub children: Vec<usize>,
}

/// A dominance forest over one candidate congruence class.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DominanceForest {
    nodes: Vec<DfNode>,
}

impl DominanceForest {
    /// Build the dominance forest of `members`, each given as
    /// `(value, defining block, definition position)`.
    ///
    /// Members must have reachable defining blocks. The order of `members`
    /// is irrelevant; nodes come out in (preorder, position) order, which
    /// is also a valid top-down traversal order.
    pub fn build(members: &[(Value, Block, u32)], dt: &DomTree) -> Self {
        // Sort by (preorder of def block, def position). The paper radix
        // sorts by preorder; we radix sort the combined 64-bit key.
        let mut keyed: Vec<(u64, usize)> = members
            .iter()
            .enumerate()
            .map(|(i, &(_, b, pos))| (((dt.preorder(b) as u64) << 32) | pos as u64, i))
            .collect();
        radix_sort_by_key(&mut keyed);

        let mut nodes: Vec<DfNode> = Vec::with_capacity(members.len());
        // Stack of open ancestors, as indices into `nodes`; the virtual
        // root is represented by an empty-slot sentinel handled below.
        let mut stack: Vec<usize> = Vec::new();

        for &(_, mi) in &keyed {
            let (value, block, def_pos) = members[mi];
            let pre = dt.preorder(block);
            // Pop ancestors that cannot dominate this member: the member's
            // preorder lies outside their descendant bracket. Same-block
            // entries share a preorder and therefore never pop each other,
            // which chains them in definition order.
            while let Some(&top) = stack.last() {
                let tb = nodes[top].block;
                if pre > dt.max_preorder(tb) {
                    stack.pop();
                } else {
                    break;
                }
            }
            let parent = stack.last().copied();
            let idx = nodes.len();
            nodes.push(DfNode {
                value,
                block,
                def_pos,
                parent,
                children: Vec::new(),
            });
            if let Some(p) = parent {
                nodes[p].children.push(idx);
            }
            stack.push(idx);
        }

        DominanceForest { nodes }
    }

    /// The nodes in (preorder, definition-position) order.
    pub fn nodes(&self) -> &[DfNode] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indices of the root nodes.
    pub fn roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, _)| i)
    }

    /// Approximate heap bytes used.
    pub fn bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<DfNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * 8)
                .sum::<usize>()
    }
}

/// LSD radix sort of `(key, payload)` pairs by key, 16 bits per pass.
///
/// The paper notes the member sort is a radix sort to keep forest
/// construction linear; keys here are `(preorder << 32) | position`, so
/// four passes suffice.
pub fn radix_sort_by_key(items: &mut Vec<(u64, usize)>) {
    if items.len() <= 1 {
        return;
    }
    // 8-bit digits: the bucket arrays are tiny, so sorting the many small
    // member sets a real function produces stays cheap (a 16-bit radix
    // would zero 64 KiB of counters per pass — measurably dominant).
    const BITS: u32 = 8;
    const BUCKETS: usize = 1 << BITS;
    let mut scratch: Vec<(u64, usize)> = vec![(0, 0); items.len()];
    let max_key = items.iter().map(|&(k, _)| k).max().unwrap_or(0);
    let passes = ((64 - max_key.leading_zeros()).div_ceil(BITS)).max(1);
    for pass in 0..passes {
        let shift = pass * BITS;
        let mut starts = [0usize; BUCKETS + 1];
        for &(k, _) in items.iter() {
            starts[(((k >> shift) as usize) & (BUCKETS - 1)) + 1] += 1;
        }
        for i in 1..=BUCKETS {
            starts[i] += starts[i - 1];
        }
        for &(k, p) in items.iter() {
            let b = ((k >> shift) as usize) & (BUCKETS - 1);
            scratch[starts[b]] = (k, p);
            starts[b] += 1;
        }
        std::mem::swap(items, &mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::ControlFlowGraph;

    /// A dominator tree shaped like:
    /// b0 → {b1, b4}; b1 → {b2, b3}
    const TREE: &str = "
        function @t(0) {
        b0:
            v0 = const 1
            branch v0, b1, b4
        b1:
            branch v0, b2, b3
        b2:
            jump b4
        b3:
            jump b4
        b4:
            return
        }";

    fn dt_for(text: &str) -> (fcc_ir::Function, DomTree) {
        let f = parse_function(text).unwrap();
        let cfg = ControlFlowGraph::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        (f, dt)
    }

    fn forest(members: &[(usize, usize, u32)], dt: &DomTree) -> DominanceForest {
        let ms: Vec<(Value, Block, u32)> = members
            .iter()
            .map(|&(v, b, p)| (Value::new(v), Block::new(b), p))
            .collect();
        DominanceForest::build(&ms, dt)
    }

    /// Naive O(n²) reference: parent of v = the member whose block is the
    /// *nearest* strict dominator (or earlier same-block definition).
    fn naive_parent(members: &[(Value, Block, u32)], i: usize, dt: &DomTree) -> Option<Value> {
        let (_, bi, pi) = members[i];
        let mut best: Option<(usize, u32, u32)> = None; // (idx, preorder, pos)
        for (j, &(_, bj, pj)) in members.iter().enumerate() {
            if j == i {
                continue;
            }
            let dominates = if bj == bi {
                pj < pi
            } else {
                dt.strictly_dominates(bj, bi)
            };
            if !dominates {
                continue;
            }
            let key = (dt.preorder(bj), pj);
            if best.is_none_or(|(_, bp, bpos)| key > (bp, bpos)) {
                best = Some((j, key.0, key.1));
            }
        }
        best.map(|(j, _, _)| members[j].0)
    }

    fn check_against_naive(members: &[(usize, usize, u32)], dt: &DomTree) {
        let ms: Vec<(Value, Block, u32)> = members
            .iter()
            .map(|&(v, b, p)| (Value::new(v), Block::new(b), p))
            .collect();
        let df = DominanceForest::build(&ms, dt);
        assert_eq!(df.len(), ms.len());
        for node in df.nodes() {
            let i = ms.iter().position(|&(v, _, _)| v == node.value).unwrap();
            let expect = naive_parent(&ms, i, dt);
            let got = node.parent.map(|p| df.nodes()[p].value);
            assert_eq!(got, expect, "parent of {} in {members:?}", node.value);
        }
    }

    #[test]
    fn chain_collapses_to_path() {
        let (_, dt) = dt_for(TREE);
        // Members in b0, b1, b2: a dominator-tree path.
        check_against_naive(&[(0, 0, 0), (1, 1, 0), (2, 2, 0)], &dt);
    }

    #[test]
    fn siblings_share_parent() {
        let (_, dt) = dt_for(TREE);
        // b2 and b3 are siblings under b1.
        let df = forest(&[(1, 1, 0), (2, 2, 0), (3, 3, 0)], &dt);
        let root: Vec<usize> = df.roots().collect();
        assert_eq!(root.len(), 1);
        assert_eq!(df.nodes()[root[0]].children.len(), 2);
        check_against_naive(&[(1, 1, 0), (2, 2, 0), (3, 3, 0)], &dt);
    }

    #[test]
    fn unrelated_blocks_make_roots() {
        let (_, dt) = dt_for(TREE);
        // b2 and b3 don't dominate each other: two roots.
        let df = forest(&[(2, 2, 0), (3, 3, 0)], &dt);
        assert_eq!(df.roots().count(), 2);
    }

    #[test]
    fn skipping_intermediate_blocks() {
        let (_, dt) = dt_for(TREE);
        // Members in b0 and b2 (b1 not a member): edge collapses b1.
        let df = forest(&[(0, 0, 0), (2, 2, 0)], &dt);
        let nodes = df.nodes();
        assert_eq!(nodes[0].value, Value::new(0));
        assert_eq!(nodes[1].parent, Some(0));
        check_against_naive(&[(0, 0, 0), (2, 2, 0)], &dt);
    }

    #[test]
    fn join_block_member_not_under_branch_members() {
        let (_, dt) = dt_for(TREE);
        // b4 is dominated only by b0 (join point), so with members in
        // b1, b2, b4 the b4 node must be a root (b1 doesn't dominate b4).
        check_against_naive(&[(1, 1, 0), (2, 2, 0), (4, 4, 0)], &dt);
    }

    #[test]
    fn same_block_members_chain_in_def_order() {
        let (_, dt) = dt_for(TREE);
        let df = forest(&[(10, 1, 5), (11, 1, 2), (12, 1, 8)], &dt);
        let nodes = df.nodes();
        // Sorted by position: 11 (pos 2) -> 10 (pos 5) -> 12 (pos 8).
        assert_eq!(nodes[0].value, Value::new(11));
        assert_eq!(nodes[1].value, Value::new(10));
        assert_eq!(nodes[2].value, Value::new(12));
        assert_eq!(nodes[1].parent, Some(0));
        assert_eq!(nodes[2].parent, Some(1));
    }

    #[test]
    fn mixed_same_block_and_dominance() {
        let (_, dt) = dt_for(TREE);
        check_against_naive(
            &[(0, 0, 0), (1, 1, 1), (2, 1, 4), (3, 2, 0), (4, 4, 0)],
            &dt,
        );
    }

    #[test]
    fn empty_and_singleton() {
        let (_, dt) = dt_for(TREE);
        let df = forest(&[], &dt);
        assert!(df.is_empty());
        let df1 = forest(&[(7, 3, 0)], &dt);
        assert_eq!(df1.len(), 1);
        assert_eq!(df1.roots().count(), 1);
    }

    #[test]
    fn radix_sort_sorts() {
        let mut v: Vec<(u64, usize)> = vec![
            (5, 0),
            (1, 1),
            (1 << 40, 2),
            (0, 3),
            (u32::MAX as u64, 4),
            (5, 5),
        ];
        radix_sort_by_key(&mut v);
        let keys: Vec<u64> = v.iter().map(|&(k, _)| k).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(keys, expect);
        // Stability: equal keys keep input order.
        let fives: Vec<usize> = v
            .iter()
            .filter(|&&(k, _)| k == 5)
            .map(|&(_, p)| p)
            .collect();
        assert_eq!(fives, vec![0, 5]);
    }

    #[test]
    fn radix_sort_random_cross_check() {
        let mut rng = fcc_workloads::SplitMix64::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(0usize..200);
            let mut v: Vec<(u64, usize)> = (0..n)
                .map(|i| (rng.next_u64() >> rng.gen_range(0u32..64), i))
                .collect();
            let mut expect = v.clone();
            expect.sort_by_key(|&(k, _)| k);
            radix_sort_by_key(&mut v);
            assert_eq!(
                v.iter().map(|p| p.0).collect::<Vec<_>>(),
                expect.iter().map(|p| p.0).collect::<Vec<_>>()
            );
        }
    }
}
