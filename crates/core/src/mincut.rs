//! A small s–t min-cut (Edmonds–Karp max-flow) over weighted undirected
//! graphs.
//!
//! Used by the coalescer's *edge-cut* split strategy (an extension in the
//! spirit of the paper's "several heuristics to improve the precision"
//! future work): when two members of a candidate congruence class
//! interfere, the class's φ-connection graph is cut between them so that
//! the fewest (loop-depth-weighted) copies materialise. Classes are
//! small, so a simple O(V·E²) max-flow is more than fast enough.

use std::collections::VecDeque;

/// Compute a minimum s–t cut of an undirected graph.
///
/// `edges` are `(u, v, weight)` with nodes in `0..n`; parallel edges add
/// up. Returns the cut weight and, for every node, whether it lies on the
/// **source side** of the cut.
///
/// # Panics
/// Panics if `s == t` or any endpoint is out of range.
pub fn min_cut(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> (u64, Vec<bool>) {
    assert!(s < n && t < n && s != t, "bad cut endpoints");
    // Dense capacity matrix: classes are small (the caller bounds n).
    let mut cap = vec![0u64; n * n];
    for &(u, v, w) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
        if u == v {
            continue;
        }
        cap[u * n + v] += w;
        cap[v * n + u] += w;
    }

    let mut flow = 0u64;
    loop {
        // BFS for an augmenting path in the residual graph.
        let mut parent = vec![usize::MAX; n];
        parent[s] = s;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v] == usize::MAX && cap[u * n + v] > 0 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[t] == usize::MAX {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = u64::MAX;
        let mut v = t;
        while v != s {
            let u = parent[v];
            bottleneck = bottleneck.min(cap[u * n + v]);
            v = u;
        }
        let mut v = t;
        while v != s {
            let u = parent[v];
            cap[u * n + v] -= bottleneck;
            cap[v * n + u] += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }

    // Source side = residual-reachable from s.
    let mut side = vec![false; n];
    side[s] = true;
    let mut queue = VecDeque::from([s]);
    while let Some(u) = queue.pop_front() {
        for v in 0..n {
            if !side[v] && cap[u * n + v] > 0 {
                side[v] = true;
                queue.push_back(v);
            }
        }
    }
    (flow, side)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_cut() {
        let (w, side) = min_cut(2, &[(0, 1, 7)], 0, 1);
        assert_eq!(w, 7);
        assert!(side[0] && !side[1]);
    }

    #[test]
    fn path_cuts_at_lightest_edge() {
        // 0 -5- 1 -2- 2 -9- 3: min cut 0..3 is the weight-2 edge.
        let (w, side) = min_cut(4, &[(0, 1, 5), (1, 2, 2), (2, 3, 9)], 0, 3);
        assert_eq!(w, 2);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn parallel_edges_add_up() {
        let (w, _) = min_cut(2, &[(0, 1, 3), (0, 1, 4)], 0, 1);
        assert_eq!(w, 7);
    }

    #[test]
    fn triangle_with_heavy_detour() {
        // 0-1 weight 1, but also 0-2-1 with weight 10 each: cut = 1 + 10.
        let (w, _) = min_cut(3, &[(0, 1, 1), (0, 2, 10), (2, 1, 10)], 0, 1);
        assert_eq!(w, 11);
    }

    #[test]
    fn star_separates_leaf() {
        // Center 0 with leaves 1..4; cutting leaf 3 off costs its spoke.
        let edges = [(0, 1, 5), (0, 2, 5), (0, 3, 2), (0, 4, 5)];
        let (w, side) = min_cut(5, &edges, 0, 3);
        assert_eq!(w, 2);
        assert!(side[0] && side[1] && side[2] && !side[3] && side[4]);
    }

    #[test]
    fn disconnected_nodes_cut_for_free() {
        let (w, side) = min_cut(3, &[(0, 1, 4)], 0, 2);
        assert_eq!(w, 0);
        assert!(side[0] && side[1] && !side[2]);
    }

    #[test]
    fn cut_weight_matches_crossing_edges() {
        // Cross-check: sum of edges crossing the reported partition must
        // equal the reported flow.
        let edges = [
            (0usize, 1usize, 3u64),
            (0, 2, 1),
            (1, 2, 1),
            (1, 3, 2),
            (2, 3, 4),
            (2, 4, 2),
            (3, 4, 1),
        ];
        let (w, side) = min_cut(5, &edges, 0, 4);
        let crossing: u64 = edges
            .iter()
            .filter(|&&(u, v, _)| side[u] != side[v])
            .map(|&(_, _, w)| w)
            .sum();
        assert_eq!(w, crossing);
    }

    #[test]
    #[should_panic(expected = "bad cut endpoints")]
    fn same_endpoints_panic() {
        min_cut(2, &[], 1, 1);
    }
}
