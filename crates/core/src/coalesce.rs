//! The paper's algorithm: SSA-to-CFG conversion with copy coalescing and
//! **no interference graph** (Section 3).
//!
//! The four steps, as published:
//!
//! 1. **Build initial live ranges** (§3.1): union every φ destination with
//!    its arguments, screened by five fast liveness filters that catch
//!    copies the SSA construction folded "in error". A filtered argument
//!    stays out of the union — the final rewrite gives it an edge copy.
//! 2. **Dominance forests** (§3.2): map each candidate class onto the
//!    [`crate::dforest::DominanceForest`], reducing intra-class
//!    interference checking to forest edges (Lemma 3.1).
//! 3. **Walk the forests** (§3.3, Figure 2): along each effective
//!    parent→child edge, `liveout(parent, child's block)` proves a real
//!    interference — split the cheaper member out of the class;
//!    `livein(parent, child's block)` or a shared defining block defers to
//!    a **local interference** check (§3.4) that compares the parent's
//!    last use against the child's definition point inside the block.
//! 4. **Rename and insert copies** (§3.5–3.6): every surviving class gets
//!    one name; for each φ whose argument's class differs from its
//!    destination's, a copy is queued in the `Waiting` array of the
//!    predecessor block ("From" block). Each block's queued copies form a
//!    parallel copy sequentialised with cycle temporaries, which is what
//!    makes the swap and *virtual swap* examples (Figures 3–4) come out
//!    correct. Critical edges are split before anything else (lost-copy
//!    problem).
//!
//! Two documented departures from the letter of the paper:
//!
//! * the paper queues local-interference candidates and resolves them in
//!   one backward sweep per block after all forests are walked; we
//!   resolve each candidate *immediately* (against a lazily built
//!   per-block last-use table, so each block is still walked once).
//!   Immediate resolution keeps the walk's parent-promotion reasoning
//!   exact when a local split removes a chain member;
//! * [`SplitStrategy::EdgeCut`] is an *extension* in the direction of the
//!   paper's future work ("several heuristics to improve the precision"):
//!   instead of evicting a whole member — which turns **every** φ edge of
//!   that member into a copy — the candidate class is partitioned along a
//!   minimum loop-depth-weighted cut of its φ-connection graph, so only
//!   the cheapest φ edges materialise as copies. The default remains the
//!   paper's member-removal rule.

use std::collections::HashMap;

use fcc_analysis::{AnalysisManager, DomTree, Liveness, LoopNesting, UnionFind};
use fcc_ir::{Block, ControlFlowGraph, Function, Inst, InstKind, Value};
use fcc_ssa::edges::split_critical_edges_with;
use fcc_ssa::parcopy::sequentialize;
use fcc_ssa::trace::DestructionTrace;

use crate::dforest::DominanceForest;
use crate::mincut::min_cut;

/// How to pick the victim when two class members interfere (member
/// removal strategy).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SplitHeuristic {
    /// The paper's Figure 2 rule: split the child only when the parent
    /// cannot interfere with its other children *and* the child has fewer
    /// pending copies; otherwise split the parent.
    #[default]
    CopyCost,
    /// Always split the child (ablation).
    AlwaysChild,
    /// Always split the parent (ablation).
    AlwaysParent,
}

/// How to break a candidate congruence class when members interfere.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SplitStrategy {
    /// The paper's rule: remove one member; every φ edge between the
    /// member and the rest of the class becomes a copy.
    #[default]
    RemoveMember,
    /// Extension: partition the class along a minimum-weight cut of its
    /// φ-connection graph (edge weight `10^loop-depth` of the copy's
    /// placement block), so the interference is broken by the cheapest
    /// set of copies instead of by all of one member's edges.
    EdgeCut,
}

/// Tuning knobs, mainly for the ablation benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoalesceOptions {
    /// Apply the five §3.1 filters while building the initial unions.
    /// Disabling them lets erroneously folded copies into the classes, to
    /// be discovered (at greater cost in copies) by the forest walk — the
    /// paper's motivation for filtering early.
    pub early_filters: bool,
    /// Victim-selection rule for member-removal splits.
    pub split_heuristic: SplitHeuristic,
    /// Class-breaking strategy.
    pub split_strategy: SplitStrategy,
}

impl Default for CoalesceOptions {
    fn default() -> Self {
        CoalesceOptions {
            early_filters: true,
            split_heuristic: SplitHeuristic::CopyCost,
            split_strategy: SplitStrategy::RemoveMember,
        }
    }
}

/// Counters and byte accounting for one coalescing run (feeds Tables 2–5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoalesceStats {
    /// φ arguments excluded by the §3.1 filters.
    pub filter_copies: usize,
    /// Members split out by the forest walk's liveout test.
    pub forest_splits: usize,
    /// Members split out by the local (in-block) interference check.
    pub local_splits: usize,
    /// Class bipartitions performed by the edge-cut strategy.
    pub cut_splits: usize,
    /// Local candidate pairs examined.
    pub local_pairs_checked: usize,
    /// Candidate classes with at least two members.
    pub classes: usize,
    /// `copy` instructions inserted into the rewritten function.
    pub copies_inserted: usize,
    /// Temporaries minted to break parallel-copy cycles.
    pub cycle_temps: usize,
    /// Critical edges split.
    pub edges_split: usize,
    /// φ-nodes removed.
    pub phis_removed: usize,
    /// Peak bytes of the algorithm's data structures (liveness sets,
    /// union-find, dominator tree, forests, waiting lists) — the Table 3
    /// metric. No interference graph appears here; that is the point.
    pub peak_bytes: usize,
}

/// Convert `func` out of SSA, coalescing φ-related names, with default
/// options. See the module docs for the algorithm.
pub fn coalesce_ssa(func: &mut Function) -> CoalesceStats {
    coalesce_ssa_with(func, &CoalesceOptions::default())
}

/// Shared per-run context for the interference machinery.
struct Ctx<'a> {
    func: &'a Function,
    dt: &'a DomTree,
    live: &'a Liveness,
    def_block: &'a [Option<Block>],
    def_pos: &'a [u32],
    phi_degree: &'a [u32],
    last_use_cache: HashMap<Block, HashMap<Value, u32>>,
    stats: &'a mut CoalesceStats,
}

impl Ctx<'_> {
    fn last_use(&mut self, b: Block, v: Value) -> Option<u32> {
        let func = self.func;
        self.last_use_cache
            .entry(b)
            .or_insert_with(|| {
                let mut m: HashMap<Value, u32> = HashMap::new();
                for (pos, &inst) in func.block_insts(b).iter().enumerate() {
                    func.inst(inst).kind.for_each_use(|v| {
                        m.insert(v, pos as u32);
                    });
                }
                m
            })
            .get(&v)
            .copied()
    }

    /// The §3.3/§3.4 interference test for a forest edge p→c. `c_block` /
    /// `c_pos` locate c's definition.
    fn edge_interferes(&mut self, p: Value, p_block: Block, c_block: Block, c_pos: u32) -> bool {
        if p_block != c_block && self.live.is_live_out(p, c_block) {
            return true;
        }
        if p_block == c_block || self.live.is_live_in(p, c_block) {
            self.stats.local_pairs_checked += 1;
            let p_live_out_same = p_block == c_block && self.live.is_live_out(p, c_block);
            let last = self.last_use(c_block, p);
            return p_live_out_same || last.is_some_and(|u| u > c_pos);
        }
        false
    }
}

/// Convert `func` out of SSA with explicit [`CoalesceOptions`].
///
/// On return `func` contains no φ-nodes and computes the same function
/// (checked exhaustively by the integration suite against the φ-aware
/// reference interpreter).
pub fn coalesce_ssa_with(func: &mut Function, opts: &CoalesceOptions) -> CoalesceStats {
    coalesce_ssa_managed(func, opts, &mut AnalysisManager::new())
}

/// [`coalesce_ssa_with`], pulling every supporting analysis from a shared
/// [`AnalysisManager`] — cache hits whenever the caller's pipeline
/// already computed them for the unmodified function.
pub fn coalesce_ssa_managed(
    func: &mut Function,
    opts: &CoalesceOptions,
    am: &mut AnalysisManager,
) -> CoalesceStats {
    coalesce_ssa_managed_impl(func, opts, am, false).0
}

/// [`coalesce_ssa_managed`], additionally returning the
/// [`DestructionTrace`] (pre-destruction snapshot, congruence-class
/// map, and the `Waiting` array) for the `fcc-lint` soundness auditor.
pub fn coalesce_ssa_traced(
    func: &mut Function,
    opts: &CoalesceOptions,
    am: &mut AnalysisManager,
) -> (CoalesceStats, DestructionTrace) {
    let (stats, trace) = coalesce_ssa_managed_impl(func, opts, am, true);
    (stats, trace.expect("trace requested"))
}

fn coalesce_ssa_managed_impl(
    func: &mut Function,
    opts: &CoalesceOptions,
    am: &mut AnalysisManager,
    want_trace: bool,
) -> (CoalesceStats, Option<DestructionTrace>) {
    let stats = CoalesceStats {
        edges_split: split_critical_edges_with(func, am),
        ..Default::default()
    };

    let cfg = am.cfg(func);
    let dt = am.domtree(func);
    // Sparse per-variable liveness: the input is SSA, so the fast
    // algorithm applies (identical sets to the dataflow version).
    let live = am.liveness_ssa(func);
    // Loop nesting is only consulted by the edge-cut strategy's weights.
    let loops = match opts.split_strategy {
        SplitStrategy::EdgeCut => Some(am.loops(func)),
        SplitStrategy::RemoveMember => None,
    };
    coalesce_prepared_impl(
        func,
        &cfg,
        &dt,
        &live,
        loops.as_deref(),
        opts,
        stats,
        want_trace,
    )
}

/// The conversion proper, with the supporting analyses supplied by the
/// caller — the shape a real compiler uses (analyses are shared between
/// passes) and the granularity at which the paper's `O(n·α(n))` bound
/// applies (Section 3.7 counts the union-find, forest, and rewrite work;
/// liveness and dominators are assumed, as in the paper).
///
/// Requirements: critical edges already split, and `cfg`/`dt`/`live`
/// computed for the *current* `func`. `loops` is consulted only by the
/// edge-cut strategy; pass `None` to have it computed on demand.
/// [`coalesce_ssa_managed`] wraps this with the right preparation.
pub fn coalesce_prepared(
    func: &mut Function,
    cfg: &ControlFlowGraph,
    dt: &DomTree,
    live: &Liveness,
    loops: Option<&LoopNesting>,
    opts: &CoalesceOptions,
    stats: CoalesceStats,
) -> CoalesceStats {
    coalesce_prepared_impl(func, cfg, dt, live, loops, opts, stats, false).0
}

#[allow(clippy::too_many_arguments)]
fn coalesce_prepared_impl(
    func: &mut Function,
    cfg: &ControlFlowGraph,
    dt: &DomTree,
    live: &Liveness,
    loops: Option<&LoopNesting>,
    opts: &CoalesceOptions,
    mut stats: CoalesceStats,
    want_trace: bool,
) -> (CoalesceStats, Option<DestructionTrace>) {
    // Requirement: critical edges already split, so the snapshot and the
    // final function agree on block structure.
    let pre = want_trace.then(|| func.clone());
    let n = func.num_values();

    // Definition sites: block + instruction index, for forest building and
    // the local interference check.
    let mut def_block: Vec<Option<Block>> = vec![None; n];
    let mut def_pos: Vec<u32> = vec![0; n];
    let mut is_phi_def: Vec<bool> = vec![false; n];
    // φ connectivity degree: the "copies to insert" cost in Figure 2's
    // victim heuristic — how many φ edges would turn into copies if the
    // value were split out.
    let mut phi_degree: Vec<u32> = vec![0; n];
    // Total uses per value (ordinary + φ-argument). A φ destination with
    // zero uses is dead; its edge moves are skipped so they cannot clash
    // with a live class-mate's moves.
    let mut use_count: Vec<u32> = vec![0; n];
    let mut phis: Vec<(Block, Inst)> = Vec::new();

    for b in func.blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for (pos, &inst) in func.block_insts(b).iter().enumerate() {
            let data = func.inst(inst);
            if let Some(d) = data.dst {
                def_block[d.index()] = Some(b);
                def_pos[d.index()] = pos as u32;
                is_phi_def[d.index()] = data.kind.is_phi();
            }
            data.kind.for_each_use(|v| use_count[v.index()] += 1);
            if let InstKind::Phi { args } = &data.kind {
                let d = data.dst.expect("phi defines");
                phi_degree[d.index()] += args.len() as u32;
                for a in args {
                    phi_degree[a.value.index()] += 1;
                    use_count[a.value.index()] += 1;
                }
                phis.push((b, inst));
            }
        }
    }

    // ---- Step 1: initial unions with the five filters (§3.1) ----
    let mut uf = UnionFind::new(n);
    {
        // Values already pulled into some φ's union earlier in the current
        // block (test 4).
        let mut seen_block: Option<Block> = None;
        let mut seen_in_block: std::collections::HashSet<Value> = std::collections::HashSet::new();
        for &(b, phi) in &phis {
            if seen_block != Some(b) {
                seen_block = Some(b);
                seen_in_block.clear();
            }
            let data = func.inst(phi);
            let p = data.dst.expect("phi defines");
            let InstKind::Phi { args } = &data.kind else {
                unreachable!()
            };
            // Defining blocks of arguments admitted to this φ's union
            // (test 5).
            let mut admitted_blocks: Vec<Block> = Vec::new();
            for arg in args {
                let a = arg.value;
                if a == p || uf.same(a.index(), p.index()) {
                    seen_in_block.insert(a);
                    continue;
                }
                let ab = def_block[a.index()].expect("phi arg has a def");
                let interferes = opts.early_filters
                    && (
                        // Test 1: aᵢ live-in at the φ block means some use
                        // of aᵢ other than the φ needs the old value.
                        live.is_live_in(a, b)
                        // Test 2: p live out of aᵢ's defining block.
                        || live.is_live_out(p, ab)
                        // Test 3: aᵢ is itself a φ and p is live into its
                        // block.
                        || (is_phi_def[a.index()] && live.is_live_in(p, ab))
                        // Test 4: aᵢ already joined another φ's set in
                        // this block.
                        || seen_in_block.contains(&a)
                        // Test 5: two arguments of this φ share a defining
                        // block.
                        || admitted_blocks.contains(&ab)
                    );
                if interferes {
                    stats.filter_copies += 1;
                    continue;
                }
                uf.union(a.index(), p.index());
                admitted_blocks.push(ab);
                seen_in_block.insert(a);
            }
            seen_in_block.insert(p);
        }
    }

    // ---- Steps 2–3: dominance forests and interference resolution ----
    let groups = uf.groups();
    let mut forest_bytes = 0usize;
    // Final congruence classes: `name[v]` maps every value to the name of
    // its class (identity for singletons and split-off members).
    let mut name: Vec<Value> = (0..n).map(Value::new).collect();

    // Fallback loop nesting for direct callers that passed `None`.
    let mut loops_owned: Option<LoopNesting> = None;
    let mut ctx = Ctx {
        func,
        dt,
        live,
        def_block: &def_block,
        def_pos: &def_pos,
        phi_degree: &phi_degree,
        last_use_cache: HashMap::new(),
        stats: &mut stats,
    };

    for group in &groups {
        fcc_analysis::fuel::checkpoint(1);
        let members: Vec<Value> = group
            .iter()
            .map(|&vi| Value::new(vi))
            .filter(|v| def_block[v.index()].is_some())
            .collect();
        if members.len() < 2 {
            continue;
        }
        ctx.stats.classes += 1;
        let final_parts = match opts.split_strategy {
            SplitStrategy::RemoveMember => {
                resolve_by_removal(&mut ctx, &members, opts.split_heuristic, &mut forest_bytes)
            }
            SplitStrategy::EdgeCut => {
                let lp: &LoopNesting = match loops {
                    Some(l) => l,
                    None => loops_owned.get_or_insert_with(|| LoopNesting::compute(cfg, dt)),
                };
                resolve_by_cutting(&mut ctx, &members, lp, &phis, &mut forest_bytes)
            }
        };
        for part in final_parts {
            if part.len() < 2 {
                continue;
            }
            let rep = *part.iter().min().expect("nonempty class");
            for &m in &part {
                name[m.index()] = rep;
            }
        }
    }
    let last_use_bytes: usize = ctx
        .last_use_cache
        .values()
        .map(|m| m.capacity() * (std::mem::size_of::<(Value, u32)>() + 8))
        .sum();
    drop(ctx);

    // ---- Step 4: renaming (§3.5) and copy insertion (§3.6) ----
    // The Waiting array (§3.6): pending copies per predecessor block.
    let mut waiting: HashMap<Block, Vec<(Value, Value)>> = HashMap::new();
    for &(_, phi) in &phis {
        let data = func.inst(phi);
        let p = data.dst.expect("phi defines");
        if use_count[p.index()] == 0 {
            continue; // dead φ: no moves needed
        }
        let pn = name[p.index()];
        let InstKind::Phi { args } = &data.kind else {
            unreachable!()
        };
        for arg in args {
            let an = name[arg.value.index()];
            if an != pn {
                let w = waiting.entry(arg.pred).or_default();
                if !w.contains(&(pn, an)) {
                    w.push((pn, an));
                }
            }
        }
    }

    // Rewrite every instruction into the class namespace.
    let all_blocks: Vec<Block> = func.blocks().collect();
    for b in all_blocks {
        fcc_analysis::fuel::checkpoint(1);
        let insts: Vec<Inst> = func.block_insts(b).to_vec();
        for inst in insts {
            let data = func.inst_mut(inst);
            if let Some(d) = data.dst {
                data.dst = Some(name[d.index()]);
            }
            data.kind.for_each_use_mut(|v| *v = name[v.index()]);
        }
    }

    // Insert the pending copies, sequentialising each block's parallel
    // copy (swap / virtual-swap safety).
    let mut waiting_blocks: Vec<Block> = waiting.keys().copied().collect();
    waiting_blocks.sort_unstable();
    let recorded_waiting = want_trace.then(|| {
        waiting_blocks
            .iter()
            .map(|&b| (b, waiting[&b].clone()))
            .collect::<Vec<_>>()
    });
    let mut waiting_bytes = 0usize;
    for b in &waiting_blocks {
        waiting_bytes += waiting[b].capacity() * std::mem::size_of::<(Value, Value)>();
    }
    for b in waiting_blocks {
        let copies = &waiting[&b];
        let mut temps = 0usize;
        let seq = {
            let func_cell = std::cell::RefCell::new(&mut *func);
            sequentialize(copies, || {
                temps += 1;
                func_cell.borrow_mut().new_value()
            })
        };
        stats.cycle_temps += temps;
        for (dst, src) in seq {
            func.insert_before_terminator(b, InstKind::Copy { src }, Some(dst));
            stats.copies_inserted += 1;
        }
    }

    // Delete the φs.
    for (b, phi) in phis {
        func.remove_inst(b, phi);
        stats.phis_removed += 1;
    }

    stats.peak_bytes = live.bytes()
        + uf.bytes()
        + dt.bytes()
        + forest_bytes
        + waiting_bytes
        + last_use_bytes
        + n * (std::mem::size_of::<Option<Block>>() + 4 + 2 + std::mem::size_of::<Value>());
    let trace = pre.map(|pre| DestructionTrace {
        pre,
        class_of: name,
        waiting: recorded_waiting,
    });
    (stats, trace)
}

/// The paper's resolution: walk the forest once, evicting one member per
/// interference (Figure 2 + the §3.4 local check). Returns the final
/// partition: the surviving class plus singletons.
fn resolve_by_removal(
    ctx: &mut Ctx<'_>,
    members: &[Value],
    heuristic: SplitHeuristic,
    forest_bytes: &mut usize,
) -> Vec<Vec<Value>> {
    let sites: Vec<(Value, Block, u32)> = members
        .iter()
        .map(|&v| (v, ctx.def_block[v.index()].unwrap(), ctx.def_pos[v.index()]))
        .collect();
    let df = DominanceForest::build(&sites, ctx.dt);
    *forest_bytes = (*forest_bytes).max(df.bytes());
    let nodes = df.nodes();
    let mut removed: HashMap<Value, bool> = members.iter().map(|&v| (v, false)).collect();

    // Nodes come out in a valid preorder, so ancestors are processed (and
    // possibly marked removed) before descendants.
    for idx in 0..nodes.len() {
        fcc_analysis::fuel::checkpoint(1);
        let c = &nodes[idx];
        // Effective parent: nearest non-removed forest ancestor.
        let mut anc = c.parent;
        while let Some(ai) = anc {
            if removed[&nodes[ai].value] {
                anc = nodes[ai].parent;
            } else {
                break;
            }
        }
        let Some(p_idx) = anc else { continue };
        let p = &nodes[p_idx];

        let local = p.block == c.block || !ctx.live.is_live_out(p.value, c.block);
        if ctx.edge_interferes(p.value, p.block, c.block, c.def_pos) {
            let victim = pick_victim(
                heuristic,
                ctx.phi_degree,
                nodes,
                p_idx,
                idx,
                &removed,
                ctx.live,
            );
            removed.insert(victim, true);
            if local {
                ctx.stats.local_splits += 1;
            } else {
                ctx.stats.forest_splits += 1;
            }
        }
        // else: no interference; Lemma 3.1 spares the descendants.
    }

    let survivors: Vec<Value> = members.iter().copied().filter(|v| !removed[v]).collect();
    let mut parts = vec![survivors];
    parts.extend(
        members
            .iter()
            .copied()
            .filter(|v| removed[v])
            .map(|v| vec![v]),
    );
    parts
}

/// Extension: repeatedly find an interfering pair and bipartition the
/// class along the min-weight cut of its φ-connection graph, until every
/// part is interference-free.
fn resolve_by_cutting(
    ctx: &mut Ctx<'_>,
    members: &[Value],
    loops: &LoopNesting,
    phis: &[(Block, Inst)],
    forest_bytes: &mut usize,
) -> Vec<Vec<Value>> {
    let mut done: Vec<Vec<Value>> = Vec::new();
    let mut work: Vec<Vec<Value>> = vec![members.to_vec()];

    while let Some(class) = work.pop() {
        fcc_analysis::fuel::checkpoint(1);
        if class.len() < 2 {
            done.push(class);
            continue;
        }
        match first_interference(ctx, &class, forest_bytes) {
            None => done.push(class),
            Some((p, c)) => {
                // φ-connection edges inside this class, weighted by the
                // loop depth of the block the cut copy would land in.
                let index: HashMap<Value, usize> =
                    class.iter().enumerate().map(|(i, &v)| (v, i)).collect();
                let mut edges: Vec<(usize, usize, u64)> = Vec::new();
                for &(_, phi) in phis {
                    let data = ctx.func.inst(phi);
                    let d = data.dst.expect("phi defines");
                    let Some(&di) = index.get(&d) else { continue };
                    if let InstKind::Phi { args } = &data.kind {
                        for a in args {
                            if let Some(&ai) = index.get(&a.value) {
                                if ai != di {
                                    let w = 10u64.saturating_pow(loops.depth(a.pred).min(6));
                                    edges.push((di, ai, w));
                                }
                            }
                        }
                    }
                }
                let (_, side) = min_cut(class.len(), &edges, index[&p], index[&c]);
                ctx.stats.cut_splits += 1;
                let (left, right): (Vec<Value>, Vec<Value>) =
                    class.iter().partition(|&&v| side[index[&v]]);
                debug_assert!(!left.is_empty() && !right.is_empty());
                work.push(left);
                work.push(right);
            }
        }
    }
    done
}

/// Walk the class's dominance forest; return the first interfering
/// (parent, child) pair, if any.
fn first_interference(
    ctx: &mut Ctx<'_>,
    class: &[Value],
    forest_bytes: &mut usize,
) -> Option<(Value, Value)> {
    let sites: Vec<(Value, Block, u32)> = class
        .iter()
        .map(|&v| (v, ctx.def_block[v.index()].unwrap(), ctx.def_pos[v.index()]))
        .collect();
    let df = DominanceForest::build(&sites, ctx.dt);
    *forest_bytes = (*forest_bytes).max(df.bytes());
    let nodes = df.nodes();
    for c in nodes {
        let Some(p_idx) = c.parent else { continue };
        let p = &nodes[p_idx];
        if ctx.edge_interferes(p.value, p.block, c.block, c.def_pos) {
            return Some((p.value, c.value));
        }
    }
    None
}

/// Figure 2's victim-selection heuristic.
///
/// Split the child only when the parent cannot (by the live-out test)
/// interfere with any of its other live children and the child is cheaper
/// to split; otherwise split the parent, which resolves all of its
/// pending interferences at once.
fn pick_victim(
    heuristic: SplitHeuristic,
    phi_degree: &[u32],
    nodes: &[crate::dforest::DfNode],
    p_idx: usize,
    c_idx: usize,
    removed: &HashMap<Value, bool>,
    live: &Liveness,
) -> Value {
    let p = &nodes[p_idx];
    let c = &nodes[c_idx];
    match heuristic {
        SplitHeuristic::AlwaysChild => c.value,
        SplitHeuristic::AlwaysParent => p.value,
        SplitHeuristic::CopyCost => {
            // "If p can not interfere with any of its other children and c
            // has fewer copies to insert than p" — split c; otherwise
            // split p. Low-degree leaves are the usual victims, which
            // keeps each split at one or two materialised copies.
            let p_hits_other_children = nodes[p_idx].children.iter().any(|&other| {
                other != c_idx
                    && !removed[&nodes[other].value]
                    && nodes[other].block != p.block
                    && live.is_live_out(p.value, nodes[other].block)
            });
            if !p_hits_other_children && phi_degree[c.value.index()] < phi_degree[p.value.index()] {
                c.value
            } else {
                p.value
            }
        }
    }
}
