//! Property tests for the dominance forest and the coalescer on random
//! control flow.

use fcc_analysis::DomTree;
use fcc_core::{
    coalesce_ssa, coalesce_ssa_with, CoalesceOptions, DominanceForest, SplitHeuristic,
    SplitStrategy,
};
use fcc_ir::{Block, ControlFlowGraph, Function, InstKind, Value};
use fcc_ssa::{build_ssa, verify_ssa, SsaFlavor};
use fcc_workloads::SplitMix64;

/// Random function with arbitrary control flow; same scheme as the SSA
/// property tests (forward-biased so most seeds terminate).
fn random_function(seed: u64, n_blocks: usize, n_vals: usize) -> Function {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut f = Function::new(format!("r{seed}"));
    let blocks: Vec<Block> = (0..n_blocks).map(|_| f.add_block()).collect();
    for _ in 0..n_vals {
        f.new_value();
    }
    for (bi, &b) in blocks.iter().enumerate() {
        for _ in 0..rng.gen_range(1..4) {
            let dst = Value::new(rng.gen_range(0..n_vals));
            match rng.gen_range(0..3) {
                0 => {
                    f.append_inst(
                        b,
                        InstKind::Const {
                            imm: rng.gen_range(-9i64..9),
                        },
                        Some(dst),
                    );
                }
                1 => {
                    let src = Value::new(rng.gen_range(0..n_vals));
                    f.append_inst(b, InstKind::Copy { src }, Some(dst));
                }
                _ => {
                    let a = Value::new(rng.gen_range(0..n_vals));
                    let c = Value::new(rng.gen_range(0..n_vals));
                    f.append_inst(
                        b,
                        InstKind::Binary {
                            op: fcc_ir::BinOp::Add,
                            a,
                            b: c,
                        },
                        Some(dst),
                    );
                }
            }
        }
        let term = rng.gen_range(0..4);
        if bi + 1 == n_blocks || term == 0 {
            let v = Value::new(rng.gen_range(0..n_vals));
            f.append_inst(b, InstKind::Return { val: Some(v) }, None);
        } else if term == 1 {
            let dst = blocks[rng.gen_range((bi + 1).max(1)..n_blocks)];
            f.append_inst(b, InstKind::Jump { dst }, None);
        } else {
            // Branch targets never include the entry (block 0), keeping
            // the entry predecessor-free as the verifier requires.
            let cond = Value::new(rng.gen_range(0..n_vals));
            let t = blocks[rng.gen_range(1..n_blocks)];
            let e = blocks[rng.gen_range((bi + 1).max(1).min(n_blocks - 1)..n_blocks)];
            f.append_inst(
                b,
                InstKind::Branch {
                    cond,
                    then_dst: t,
                    else_dst: e,
                },
                None,
            );
        }
    }
    f
}

fn bounded_run(f: &Function) -> Option<(Option<i64>, Vec<i64>)> {
    fcc_interp::run_with_memory(f, &[], vec![0; 32], 200_000)
        .ok()
        .map(|o| (o.ret, o.memory))
}

// ---------- dominance forest vs naive ----------

/// Naive parent: the member with the nearest strictly-dominating (or
/// earlier-in-same-block) definition.
fn naive_parent(members: &[(Value, Block, u32)], i: usize, dt: &DomTree) -> Option<Value> {
    let (_, bi, pi) = members[i];
    let mut best: Option<(usize, (u32, u32))> = None;
    for (j, &(_, bj, pj)) in members.iter().enumerate() {
        if j == i {
            continue;
        }
        let dominates = if bj == bi {
            pj < pi
        } else {
            dt.strictly_dominates(bj, bi)
        };
        if !dominates {
            continue;
        }
        let key = (dt.preorder(bj), pj);
        if best.is_none_or(|(_, bk)| key > bk) {
            best = Some((j, key));
        }
    }
    best.map(|(j, _)| members[j].0)
}

#[test]
fn dominance_forest_matches_naive_on_random_cfgs() {
    let mut rng = SplitMix64::seed_from_u64(99);
    for seed in 0..150u64 {
        let f = random_function(seed, 4 + (seed as usize % 8), 4);
        let cfg = ControlFlowGraph::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let reachable: Vec<Block> = f.blocks().filter(|&b| cfg.is_reachable(b)).collect();
        if reachable.is_empty() {
            continue;
        }
        // Random member sets over reachable blocks.
        for _ in 0..4 {
            let m = rng.gen_range(1..=reachable.len().min(8));
            let mut members: Vec<(Value, Block, u32)> = (0..m)
                .map(|i| {
                    let b = reachable[rng.gen_range(0..reachable.len())];
                    (Value::new(1000 + i), b, rng.gen_range(0..5u32))
                })
                .collect();
            // Distinct (block, pos) pairs keep the naive parent unique.
            members.sort_by_key(|&(_, b, p)| (b, p));
            members.dedup_by_key(|&mut (_, b, p)| (b, p));

            let df = DominanceForest::build(&members, &dt);
            assert_eq!(df.len(), members.len());
            for node in df.nodes() {
                let i = members
                    .iter()
                    .position(|&(v, _, _)| v == node.value)
                    .unwrap();
                let expect = naive_parent(&members, i, &dt);
                let got = node.parent.map(|p| df.nodes()[p].value);
                assert_eq!(got, expect, "seed {seed}, members {members:?}");
            }
            // Children lists must be consistent with parents.
            for (i, node) in df.nodes().iter().enumerate() {
                for &c in &node.children {
                    assert_eq!(df.nodes()[c].parent, Some(i));
                }
            }
        }
    }
}

// ---------- coalescer correctness on random SSA ----------

#[test]
fn coalescer_preserves_random_functions_all_heuristics() {
    let opts = [
        CoalesceOptions::default(),
        CoalesceOptions {
            early_filters: false,
            ..Default::default()
        },
        CoalesceOptions {
            split_heuristic: SplitHeuristic::AlwaysChild,
            ..Default::default()
        },
        CoalesceOptions {
            split_heuristic: SplitHeuristic::AlwaysParent,
            ..Default::default()
        },
        CoalesceOptions {
            split_strategy: SplitStrategy::EdgeCut,
            ..Default::default()
        },
        CoalesceOptions {
            split_strategy: SplitStrategy::EdgeCut,
            early_filters: false,
            ..Default::default()
        },
    ];
    let mut checked = 0;
    for seed in 0..350u64 {
        let base = random_function(seed, 3 + (seed as usize % 8), 6);
        let Some(reference) = bounded_run(&base) else {
            continue;
        };
        let mut ssa = base.clone();
        build_ssa(&mut ssa, SsaFlavor::Pruned, true);
        verify_ssa(&ssa).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for (oi, o) in opts.iter().enumerate() {
            let mut f = ssa.clone();
            coalesce_ssa_with(&mut f, o);
            assert!(!f.has_phis(), "seed {seed} opt {oi}");
            fcc_ir::verify::verify_function(&f)
                .unwrap_or_else(|e| panic!("seed {seed} opt {oi}: {e}"));
            let out = bounded_run(&f).expect("same termination");
            assert_eq!(
                reference, out,
                "seed {seed} opt {oi}: miscompiled\n{ssa}\n=>\n{f}"
            );
        }
        checked += 1;
    }
    assert!(checked > 80, "only {checked} random functions terminated");
}

#[test]
fn coalescer_output_never_repeats_a_phi_or_breaks_structure() {
    for seed in 400..520u64 {
        let base = random_function(seed, 5, 5);
        let mut f = base.clone();
        build_ssa(&mut f, SsaFlavor::Pruned, true);
        let stats = coalesce_ssa(&mut f);
        assert!(!f.has_phis(), "seed {seed}");
        assert!(stats.phis_removed > 0 || stats.copies_inserted == 0);
        fcc_ir::verify::verify_function(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn minimal_ssa_coalesces_correctly_too() {
    // The paper: "the algorithm we present should work for minimal or
    // semi-pruned SSA as well", possibly with extra copies.
    let mut checked = 0;
    for seed in 600..720u64 {
        let base = random_function(seed, 5, 5);
        let Some(reference) = bounded_run(&base) else {
            continue;
        };
        for flavor in [SsaFlavor::Minimal, SsaFlavor::SemiPruned] {
            let mut f = base.clone();
            build_ssa(&mut f, flavor, true);
            coalesce_ssa(&mut f);
            let out = bounded_run(&f).expect("same termination");
            assert_eq!(reference, out, "seed {seed} {flavor:?}\n{f}");
        }
        checked += 1;
    }
    assert!(checked > 30);
}
