//! Parser for the textual IR format produced by [`crate::print`].
//!
//! The format is line-oriented and intentionally rigid; it exists so that
//! tests and examples can state programs verbatim (including the paper's
//! Figure 3/4 examples) and so that printed functions round-trip.
//!
//! Comments run from `;` or `#` to end of line. Blocks must be declared in
//! numeric order (`b0:`, `b1:`, …) and values are named `vN` with arbitrary
//! numbering.

use std::fmt;

use crate::function::{Block, Function, Value};
use crate::instr::{BinOp, InstKind, PhiArg, UnaryOp};
use crate::module::Module;

/// A parse failure, with a 1-based source line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn perr(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse one function from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed construct, with
/// its line number.
///
/// # Examples
///
/// ```
/// let f = fcc_ir::parse::parse_function(
///     "function @id(1) {\n b0:\n v0 = param 0\n return v0\n }",
/// )?;
/// assert_eq!(f.name, "id");
/// # Ok::<(), fcc_ir::parse::ParseError>(())
/// ```
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut p = Parser::new(text);
    p.reject_bad_tokens()?;
    p.parse_one()
}

/// Parse a whole module: one or more functions, in file order.
///
/// The textual module format is the function format repeated (blank
/// lines and comments between functions are ignored); it is what
/// [`Module`]'s `Display` prints, and the two round-trip.
///
/// # Errors
///
/// Returns a [`ParseError`] for the first malformed construct, an empty
/// input, or a duplicated function name.
///
/// # Examples
///
/// ```
/// let m = fcc_ir::parse::parse_module(
///     "function @a(0) {\n b0:\n return\n }\n\nfunction @b(0) {\n b0:\n return\n }",
/// )?;
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.get("b").unwrap().name, "b");
/// # Ok::<(), fcc_ir::parse::ParseError>(())
/// ```
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(text);
    p.reject_bad_tokens()?;
    let mut module = Module::new();
    while let Some((ln, _)) = p.lines.get(p.pos) {
        let header_line = *ln;
        let func = p.parse_one()?;
        module
            .push(func)
            .map_err(|name| perr(header_line, format!("duplicate function @{name}")))?;
    }
    if module.is_empty() {
        return Err(perr(1, "expected at least one function"));
    }
    Ok(module)
}

struct Parser<'a> {
    lines: Vec<(usize, Vec<Tok<'a>>)>,
    pos: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tok<'a> {
    Ident(&'a str),
    Num(i64),
    Punct(char),
}

fn tokenize_line(line: &str) -> Result<Vec<Tok<'_>>, String> {
    let code = match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    };
    let mut toks = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' || c == '@' {
            let start = i;
            i += 1;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            toks.push(Tok::Ident(&code[start..i]));
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = code[start..i]
                .parse()
                .map_err(|e| format!("bad number: {e}"))?;
            toks.push(Tok::Num(n));
        } else if "(){}:,=[]".contains(c) {
            toks.push(Tok::Punct(c));
            i += 1;
        } else {
            return Err(format!("unexpected character {c:?}"));
        }
    }
    Ok(toks)
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let mut lines = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            match tokenize_line(raw) {
                Ok(toks) => {
                    if !toks.is_empty() {
                        lines.push((idx + 1, toks));
                    }
                }
                Err(msg) => {
                    lines.push((idx + 1, vec![Tok::Ident("\0bad")]));
                    let _ = msg;
                }
            }
        }
        Parser { lines, pos: 0 }
    }

    /// Pre-tokenise errors were deferred; re-scan for them eagerly.
    fn reject_bad_tokens(&self) -> Result<(), ParseError> {
        for (ln, toks) in &self.lines {
            if toks.first() == Some(&Tok::Ident("\0bad")) {
                return Err(perr(*ln, "unrecognised character"));
            }
        }
        Ok(())
    }

    /// Parse one function starting at the current line, consuming up to
    /// and including its closing `}` (so a module is parsed by calling
    /// this in a loop).
    fn parse_one(&mut self) -> Result<Function, ParseError> {
        // Header: function @name ( N ) {
        let (ln, header) = self.next_line("function header")?;
        let mut func = match header.as_slice() {
            [Tok::Ident("function"), Tok::Ident(name), Tok::Punct('('), Tok::Num(n), Tok::Punct(')'), Tok::Punct('{')]
                if name.starts_with('@') && *n >= 0 =>
            {
                let mut f = Function::new(&name[1..]);
                f.num_params = *n as usize;
                f
            }
            _ => return Err(perr(ln, "expected `function @name(N) {`")),
        };

        // First pass over this function's lines (up to its closing `}`,
        // so a following function in the same module is not scanned):
        // collect block labels. Labels must be strictly ascending but may
        // have gaps (a pass may have dropped unreachable blocks);
        // unlabeled indices become tombstone blocks outside the layout.
        let mut labels: Vec<usize> = Vec::new();
        for (ln, toks) in &self.lines[self.pos..] {
            if toks.as_slice() == [Tok::Punct('}')] {
                break;
            }
            if let [Tok::Ident(id), Tok::Punct(':')] = toks.as_slice() {
                let idx = parse_entity(id, 'b').ok_or_else(|| perr(*ln, "bad block label"))?;
                if labels.last().is_some_and(|&prev| idx <= prev) {
                    return Err(perr(
                        *ln,
                        format!("block labels must be strictly ascending; b{idx} repeats or goes backwards"),
                    ));
                }
                labels.push(idx);
            }
        }
        let num_blocks = labels.last().map_or(0, |&m| m + 1);
        let label_set: std::collections::HashSet<usize> = labels.iter().copied().collect();
        for _ in 0..num_blocks {
            func.add_block();
        }
        if let Some(&first) = labels.first() {
            func.set_entry(Block::new(first));
            for idx in 0..num_blocks {
                if !label_set.contains(&idx) {
                    func.remove_block_from_layout(Block::new(idx));
                }
            }
        }

        let mut current: Option<Block> = None;
        let mut max_value = 0usize;
        loop {
            let (ln, toks) = self.next_line("`}` to close function")?;
            match toks.as_slice() {
                [Tok::Punct('}')] => break,
                [Tok::Ident(id), Tok::Punct(':')] => {
                    let idx = parse_entity(id, 'b').ok_or_else(|| perr(ln, "bad block label"))?;
                    current = Some(Block::new(idx));
                }
                _ => {
                    let block =
                        current.ok_or_else(|| perr(ln, "instruction before any block label"))?;
                    let (kind, dst) = parse_inst(ln, &toks, &label_set, &mut max_value)?;
                    func.append_inst(block, kind, dst);
                }
            }
        }
        func.ensure_value_capacity(max_value);
        Ok(func)
    }

    fn next_line(&mut self, expected: &str) -> Result<(usize, Vec<Tok<'a>>), ParseError> {
        if self.pos >= self.lines.len() {
            let last = self.lines.last().map(|(l, _)| *l).unwrap_or(1);
            return Err(perr(
                last,
                format!("unexpected end of input; expected {expected}"),
            ));
        }
        let (ln, toks) = self.lines[self.pos].clone();
        self.pos += 1;
        Ok((ln, toks))
    }
}

fn parse_entity(id: &str, prefix: char) -> Option<usize> {
    let rest = id.strip_prefix(prefix)?;
    rest.parse().ok()
}

fn parse_value(ln: usize, tok: &Tok<'_>, max_value: &mut usize) -> Result<Value, ParseError> {
    match tok {
        Tok::Ident(id) => {
            let idx = parse_entity(id, 'v')
                .ok_or_else(|| perr(ln, format!("expected value, got {id}")))?;
            *max_value = (*max_value).max(idx + 1);
            Ok(Value::new(idx))
        }
        _ => Err(perr(ln, "expected value operand")),
    }
}

fn parse_block_ref(
    ln: usize,
    tok: &Tok<'_>,
    labels: &std::collections::HashSet<usize>,
) -> Result<Block, ParseError> {
    match tok {
        Tok::Ident(id) => {
            let idx = parse_entity(id, 'b')
                .ok_or_else(|| perr(ln, format!("expected block, got {id}")))?;
            if !labels.contains(&idx) {
                return Err(perr(ln, format!("reference to undeclared block b{idx}")));
            }
            Ok(Block::new(idx))
        }
        _ => Err(perr(ln, "expected block operand")),
    }
}

fn parse_inst(
    ln: usize,
    toks: &[Tok<'_>],
    labels: &std::collections::HashSet<usize>,
    max_value: &mut usize,
) -> Result<(InstKind, Option<Value>), ParseError> {
    // Optional `vN =` destination prefix.
    let (dst, rest) = if toks.len() >= 2 && toks[1] == Tok::Punct('=') {
        (Some(parse_value(ln, &toks[0], max_value)?), &toks[2..])
    } else {
        (None, toks)
    };
    let (op, args) = match rest.split_first() {
        Some((Tok::Ident(op), args)) => (*op, args),
        _ => return Err(perr(ln, "expected instruction mnemonic")),
    };

    let kind = match op {
        "param" => match args {
            [Tok::Num(n)] if *n >= 0 => InstKind::Param { index: *n as usize },
            _ => return Err(perr(ln, "param expects a non-negative index")),
        },
        "const" => match args {
            [Tok::Num(n)] => InstKind::Const { imm: *n },
            _ => return Err(perr(ln, "const expects an immediate")),
        },
        "copy" => match args {
            [v] => InstKind::Copy {
                src: parse_value(ln, v, max_value)?,
            },
            _ => return Err(perr(ln, "copy expects one value")),
        },
        "load" => match args {
            [v] => InstKind::Load {
                addr: parse_value(ln, v, max_value)?,
            },
            _ => return Err(perr(ln, "load expects one value")),
        },
        "store" => match args {
            [a, Tok::Punct(','), v] => InstKind::Store {
                addr: parse_value(ln, a, max_value)?,
                val: parse_value(ln, v, max_value)?,
            },
            _ => return Err(perr(ln, "store expects `addr, val`")),
        },
        "spill" => match args {
            [Tok::Num(n), Tok::Punct(','), v] if *n >= 0 && *n <= u32::MAX as i64 => {
                InstKind::Spill {
                    slot: *n as u32,
                    val: parse_value(ln, v, max_value)?,
                }
            }
            _ => return Err(perr(ln, "spill expects `slot, val`")),
        },
        "reload" => match args {
            [Tok::Num(n)] if *n >= 0 && *n <= u32::MAX as i64 => {
                InstKind::Reload { slot: *n as u32 }
            }
            _ => return Err(perr(ln, "reload expects a non-negative slot index")),
        },
        "branch" => match args {
            [c, Tok::Punct(','), t, Tok::Punct(','), e] => InstKind::Branch {
                cond: parse_value(ln, c, max_value)?,
                then_dst: parse_block_ref(ln, t, labels)?,
                else_dst: parse_block_ref(ln, e, labels)?,
            },
            _ => return Err(perr(ln, "branch expects `cond, then, else`")),
        },
        "jump" => match args {
            [d] => InstKind::Jump {
                dst: parse_block_ref(ln, d, labels)?,
            },
            _ => return Err(perr(ln, "jump expects one block")),
        },
        "return" => match args {
            [] => InstKind::Return { val: None },
            [v] => InstKind::Return {
                val: Some(parse_value(ln, v, max_value)?),
            },
            _ => return Err(perr(ln, "return expects at most one value")),
        },
        "phi" => {
            // phi [bN: vM], [bK: vL], ...
            let mut phi_args = Vec::new();
            let mut rest = args;
            loop {
                match rest {
                    [Tok::Punct('['), b, Tok::Punct(':'), v, Tok::Punct(']'), tail @ ..] => {
                        phi_args.push(PhiArg {
                            pred: parse_block_ref(ln, b, labels)?,
                            value: parse_value(ln, v, max_value)?,
                        });
                        match tail {
                            [] => break,
                            [Tok::Punct(','), more @ ..] => rest = more,
                            _ => return Err(perr(ln, "expected `,` between phi args")),
                        }
                    }
                    [] => break,
                    _ => return Err(perr(ln, "expected `[bN: vM]` phi argument")),
                }
            }
            InstKind::Phi { args: phi_args }
        }
        other => {
            if let Some(u) = UnaryOp::from_mnemonic(other) {
                match args {
                    [v] => InstKind::Unary {
                        op: u,
                        a: parse_value(ln, v, max_value)?,
                    },
                    _ => return Err(perr(ln, format!("{other} expects one value"))),
                }
            } else if let Some(b) = BinOp::from_mnemonic(other) {
                match args {
                    [x, Tok::Punct(','), y] => InstKind::Binary {
                        op: b,
                        a: parse_value(ln, x, max_value)?,
                        b: parse_value(ln, y, max_value)?,
                    },
                    _ => return Err(perr(ln, format!("{other} expects `a, b`"))),
                }
            } else {
                return Err(perr(ln, format!("unknown mnemonic `{other}`")));
            }
        }
    };

    // Destination presence is re-checked by the verifier, but catch the
    // obvious cases here for better line numbers.
    let needs_dst = !matches!(
        kind,
        InstKind::Store { .. }
            | InstKind::Spill { .. }
            | InstKind::Branch { .. }
            | InstKind::Jump { .. }
            | InstKind::Return { .. }
    );
    if needs_dst && dst.is_none() {
        return Err(perr(ln, format!("`{op}` requires a `vN =` destination")));
    }
    if !needs_dst && dst.is_some() {
        return Err(perr(ln, format!("`{op}` cannot have a destination")));
    }
    Ok((kind, dst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    const LOOP: &str = r#"
        function @count(1) {
        b0:
            v0 = param 0
            v1 = const 0
            jump b1
        b1:
            v2 = phi [b0: v1], [b1: v3]   ; loop-carried
            v3 = add v2, v0
            v4 = lt v3, v0
            branch v4, b1, b2
        b2:
            return v3
        }
    "#;

    #[test]
    fn parses_loop_and_verifies() {
        let f = parse_function(LOOP).unwrap();
        assert_eq!(f.name, "count");
        assert_eq!(f.num_params, 1);
        assert_eq!(f.blocks().count(), 3);
        verify_function(&f).unwrap();
    }

    #[test]
    fn roundtrips_through_printer() {
        let f = parse_function(LOOP).unwrap();
        let printed = f.to_string();
        let f2 = parse_function(&printed).unwrap();
        assert_eq!(printed, f2.to_string());
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let e =
            parse_function("function @x(0) {\nb0:\n v0 = frobnicate v1\n return\n}").unwrap_err();
        assert!(e.to_string().contains("unknown mnemonic"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_out_of_order_blocks() {
        let e = parse_function("function @x(0) {\nb1:\n jump b0\nb0:\n return\n}").unwrap_err();
        assert!(e.to_string().contains("ascending"), "{e}");
        let e2 = parse_function("function @x(0) {\nb0:\n return\nb0:\n return\n}").unwrap_err();
        assert!(e2.to_string().contains("ascending"), "{e2}");
    }

    #[test]
    fn accepts_gaps_in_block_labels() {
        // A pass that removed unreachable b1 prints b0 then b2; the text
        // must reparse with the same layout.
        let f = parse_function("function @g(0) {\nb0:\n jump b2\nb2:\n return\n}").unwrap();
        assert_eq!(f.blocks().count(), 2);
        assert_eq!(f.entry(), Block::new(0));
        let printed = f.to_string();
        assert!(printed.contains("b2:"), "{printed}");
        assert_eq!(parse_function(&printed).unwrap().to_string(), printed);
    }

    #[test]
    fn nonzero_entry_label() {
        let f = parse_function("function @e(0) {\nb3:\n return\n}").unwrap();
        assert_eq!(f.entry(), Block::new(3));
        assert_eq!(f.blocks().count(), 1);
    }

    #[test]
    fn rejects_undeclared_block_reference() {
        let e = parse_function("function @x(0) {\nb0:\n jump b7\n}").unwrap_err();
        assert!(e.to_string().contains("undeclared block"), "{e}");
    }

    #[test]
    fn rejects_missing_destination() {
        let e = parse_function("function @x(0) {\nb0:\n const 4\n return\n}").unwrap_err();
        assert!(e.to_string().contains("destination"), "{e}");
    }

    #[test]
    fn rejects_destination_on_jump() {
        let e = parse_function("function @x(0) {\nb0:\n v0 = jump b0\n}").unwrap_err();
        assert!(e.to_string().contains("cannot have"), "{e}");
    }

    #[test]
    fn rejects_instruction_before_block() {
        let e = parse_function("function @x(0) {\n v0 = const 1\n}").unwrap_err();
        assert!(e.to_string().contains("before any block"), "{e}");
    }

    #[test]
    fn negative_immediates() {
        let f = parse_function("function @x(0) {\nb0:\n v0 = const -12\n return v0\n}").unwrap();
        let i = f.block_insts(f.entry())[0];
        assert_eq!(f.inst(i).kind, InstKind::Const { imm: -12 });
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let f = parse_function("# header comment\nfunction @x(0) {\n\nb0:\n ; nothing\n return\n}")
            .unwrap();
        assert_eq!(f.blocks().count(), 1);
    }

    #[test]
    fn parses_a_two_function_module() {
        let m = parse_module(
            "function @f(1) {\nb0:\n v0 = param 0\n return v0\n}\n\n\
             ; a comment between functions\n\
             function @g(0) {\nb0:\n v0 = const 3\n jump b1\nb1:\n return v0\n}",
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.functions()[0].name, "f");
        assert_eq!(m.get("g").unwrap().blocks().count(), 2);
        for f in &m {
            verify_function(f).unwrap();
        }
    }

    #[test]
    fn module_functions_have_independent_block_label_spaces() {
        // @g's labels must not leak into @f's label pre-scan: @f jumps to
        // b1 which only exists in @g.
        let e = parse_module(
            "function @f(0) {\nb0:\n jump b1\n}\nfunction @g(0) {\nb0:\n jump b1\nb1:\n return\n}",
        )
        .unwrap_err();
        assert!(e.to_string().contains("undeclared block b1"), "{e}");
    }

    #[test]
    fn module_rejects_duplicate_function_names() {
        let e =
            parse_module("function @f(0) {\nb0:\n return\n}\nfunction @f(0) {\nb0:\n return\n}")
                .unwrap_err();
        assert!(e.to_string().contains("duplicate function @f"), "{e}");
        assert_eq!(e.line, 5, "error points at the second header");
    }

    #[test]
    fn module_rejects_empty_input() {
        let e = parse_module("; nothing here\n").unwrap_err();
        assert!(e.to_string().contains("at least one function"), "{e}");
    }

    #[test]
    fn spill_and_reload_roundtrip() {
        let f = parse_function(
            "function @sp(1) {\nb0:\n v0 = param 0\n spill 3, v0\n v1 = reload 3\n return v1\n}",
        )
        .unwrap();
        verify_function(&f).unwrap();
        assert_eq!(f.spill_slot_count(), 4);
        let printed = f.to_string();
        assert!(printed.contains("spill 3, v0"), "{printed}");
        assert!(printed.contains("v1 = reload 3"), "{printed}");
        assert_eq!(parse_function(&printed).unwrap().to_string(), printed);
    }

    #[test]
    fn spill_destination_rules() {
        let e = parse_function(
            "function @x(1) {\nb0:\n v0 = param 0\n v1 = spill 0, v0\n return v0\n}",
        )
        .unwrap_err();
        assert!(e.to_string().contains("cannot have"), "{e}");
        let e2 = parse_function("function @x(0) {\nb0:\n reload 0\n return\n}").unwrap_err();
        assert!(e2.to_string().contains("destination"), "{e2}");
        let e3 =
            parse_function("function @x(1) {\nb0:\n v0 = param 0\n spill -1, v0\n return v0\n}")
                .unwrap_err();
        assert!(e3.to_string().contains("spill expects"), "{e3}");
    }

    #[test]
    fn bare_phi_allowed_in_entryless_context() {
        // A phi with no args parses (the verifier rejects it later if the
        // block has predecessors).
        let f = parse_function("function @x(0) {\nb0:\n v0 = phi\n return v0\n}").unwrap();
        assert_eq!(f.phi_count(), 1);
    }
}
