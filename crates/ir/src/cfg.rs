//! Control-flow graph views: predecessor lists and traversal orders.
//!
//! The [`Function`] stores successor information implicitly in its
//! terminators; this module materialises predecessor lists and the
//! depth-first orders that the dominator and liveness computations consume.
//! A `ControlFlowGraph` is a snapshot — recompute it after mutating the
//! function's control flow.

use crate::entity::SecondaryMap;
use crate::function::{Block, Function};

/// Predecessor/successor lists plus reachability for one function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ControlFlowGraph {
    preds: SecondaryMap<Block, Vec<Block>>,
    succs: SecondaryMap<Block, Vec<Block>>,
    postorder: Vec<Block>,
    reachable: SecondaryMap<Block, bool>,
}

impl ControlFlowGraph {
    /// Compute the CFG snapshot of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut preds: SecondaryMap<Block, Vec<Block>> = SecondaryMap::new();
        let mut succs: SecondaryMap<Block, Vec<Block>> = SecondaryMap::new();
        let mut reachable: SecondaryMap<Block, bool> = SecondaryMap::new();

        for b in func.blocks() {
            succs[b] = func.successors(b);
        }

        // Iterative DFS from the entry to compute postorder and
        // reachability; predecessor edges are only recorded between
        // reachable blocks so that dead code cannot confuse the dominator
        // computation.
        let entry = func.entry();
        let mut postorder = Vec::with_capacity(func.num_blocks());
        let mut state: SecondaryMap<Block, u8> = SecondaryMap::new(); // 0 new, 1 open, 2 done
        let mut stack: Vec<(Block, usize)> = vec![(entry, 0)];
        state[entry] = 1;
        reachable[entry] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < succs[b].len() {
                let s = succs[b][*next];
                *next += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    reachable[s] = true;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                postorder.push(b);
                stack.pop();
            }
        }

        for b in func.blocks() {
            if !reachable[b] {
                continue;
            }
            for &s in &succs[b] {
                preds[s].push(b);
            }
        }

        ControlFlowGraph {
            preds,
            succs,
            postorder,
            reachable,
        }
    }

    /// Predecessors of `block` (reachable ones only). A block appears once
    /// per incoming edge, so a two-way branch with both arms targeting the
    /// same block contributes two entries.
    pub fn preds(&self, block: Block) -> &[Block] {
        &self.preds[block]
    }

    /// Successors of `block`, in terminator order.
    pub fn succs(&self, block: Block) -> &[Block] {
        &self.succs[block]
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: Block) -> bool {
        self.reachable[block]
    }

    /// Reachable blocks in postorder of a depth-first traversal from the
    /// entry.
    pub fn postorder(&self) -> &[Block] {
        &self.postorder
    }

    /// Reachable blocks in reverse postorder (a topological order ignoring
    /// back edges) — the canonical iteration order for forward dataflow.
    pub fn reverse_postorder(&self) -> Vec<Block> {
        self.postorder.iter().rev().copied().collect()
    }

    /// Whether the edge `pred → succ` is *critical*: `pred` has several
    /// successors and `succ` several predecessors. Copies for φ arguments
    /// cannot be placed safely on either side of a critical edge, so SSA
    /// destruction splits them first (Section 3.6 of the paper).
    pub fn is_critical_edge(&self, pred: Block, succ: Block) -> bool {
        self.succs[pred].len() > 1 && self.preds[succ].len() > 1
    }

    /// All critical edges `(pred, succ)` among reachable blocks.
    pub fn critical_edges(&self) -> Vec<(Block, Block)> {
        let mut out = Vec::new();
        for &b in &self.postorder {
            for &s in self.succs(b) {
                if self.is_critical_edge(b, s) {
                    out.push((b, s));
                }
            }
        }
        out
    }

    /// Approximate heap footprint, in bytes.
    pub fn bytes(&self) -> usize {
        let vecs = |m: &SecondaryMap<Block, Vec<Block>>| -> usize {
            m.bytes()
                + (0..m.len())
                    .map(|i| self.preds[Block::new(i)].capacity() * std::mem::size_of::<Block>())
                    .sum::<usize>()
        };
        vecs(&self.preds)
            + vecs(&self.succs)
            + self.postorder.capacity() * 4
            + self.reachable.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstKind;

    /// Build the diamond `b0 -> {b1, b2} -> b3`.
    fn diamond() -> (Function, [Block; 4]) {
        let mut f = Function::new("diamond");
        let b: Vec<Block> = (0..4).map(|_| f.add_block()).collect();
        let v = f.new_value();
        f.append_inst(b[0], InstKind::Const { imm: 1 }, Some(v));
        f.append_inst(
            b[0],
            InstKind::Branch {
                cond: v,
                then_dst: b[1],
                else_dst: b[2],
            },
            None,
        );
        f.append_inst(b[1], InstKind::Jump { dst: b[3] }, None);
        f.append_inst(b[2], InstKind::Jump { dst: b[3] }, None);
        f.append_inst(b[3], InstKind::Return { val: Some(v) }, None);
        (f, [b[0], b[1], b[2], b[3]])
    }

    #[test]
    fn diamond_preds_and_succs() {
        let (f, [b0, b1, b2, b3]) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        assert_eq!(cfg.succs(b0), &[b1, b2]);
        assert_eq!(cfg.preds(b3), &[b1, b2]);
        assert_eq!(cfg.preds(b0), &[] as &[Block]);
        assert!(cfg.is_reachable(b3));
    }

    #[test]
    fn postorder_ends_at_entry() {
        let (f, [b0, _, _, b3]) = diamond();
        let cfg = ControlFlowGraph::compute(&f);
        let po = cfg.postorder();
        assert_eq!(po.len(), 4);
        assert_eq!(*po.last().unwrap(), b0);
        assert_eq!(po[0], b3);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], b0);
    }

    #[test]
    fn unreachable_blocks_are_excluded() {
        let (mut f, [_, _, _, b3]) = diamond();
        let dead = f.add_block();
        f.append_inst(dead, InstKind::Jump { dst: b3 }, None);
        let cfg = ControlFlowGraph::compute(&f);
        assert!(!cfg.is_reachable(dead));
        // The dead edge must not pollute b3's predecessors.
        assert_eq!(cfg.preds(b3).len(), 2);
        assert_eq!(cfg.postorder().len(), 4);
    }

    #[test]
    fn critical_edge_detection() {
        // b0 branches to b1 and b2; b1 jumps to b2. Edge b0->b2 is critical.
        let mut f = Function::new("crit");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 0 }, Some(v));
        f.append_inst(
            b0,
            InstKind::Branch {
                cond: v,
                then_dst: b1,
                else_dst: b2,
            },
            None,
        );
        f.append_inst(b1, InstKind::Jump { dst: b2 }, None);
        f.append_inst(b2, InstKind::Return { val: None }, None);
        let cfg = ControlFlowGraph::compute(&f);
        assert!(cfg.is_critical_edge(b0, b2));
        assert!(!cfg.is_critical_edge(b0, b1));
        assert_eq!(cfg.critical_edges(), vec![(b0, b2)]);
    }

    #[test]
    fn duplicate_edges_counted_per_edge() {
        // branch with both arms to the same target: two pred entries.
        let mut f = Function::new("dup");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 0 }, Some(v));
        f.append_inst(
            b0,
            InstKind::Branch {
                cond: v,
                then_dst: b1,
                else_dst: b1,
            },
            None,
        );
        f.append_inst(b1, InstKind::Return { val: None }, None);
        let cfg = ControlFlowGraph::compute(&f);
        assert_eq!(cfg.preds(b1).len(), 2);
    }

    #[test]
    fn self_loop() {
        let mut f = Function::new("selfloop");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v));
        f.append_inst(b0, InstKind::Jump { dst: b1 }, None);
        f.append_inst(
            b1,
            InstKind::Branch {
                cond: v,
                then_dst: b1,
                else_dst: b0,
            },
            None,
        );
        let cfg = ControlFlowGraph::compute(&f);
        assert!(cfg.preds(b1).contains(&b1));
        assert!(cfg.preds(b0).contains(&b1));
    }
}
