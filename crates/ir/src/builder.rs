//! A convenience builder for constructing functions programmatically.
//!
//! The builder tracks a current insertion block and mints destination
//! values, so straight-line construction reads like assembly:
//!
//! ```
//! use fcc_ir::builder::FunctionBuilder;
//! use fcc_ir::instr::BinOp;
//!
//! let mut b = FunctionBuilder::new("add2", 2);
//! let entry = b.create_block();
//! b.switch_to(entry);
//! let x = b.param(0);
//! let y = b.param(1);
//! let s = b.binary(BinOp::Add, x, y);
//! b.ret(Some(s));
//! let func = b.finish();
//! assert_eq!(func.num_params, 2);
//! ```

use crate::function::{Block, Function, Value};
use crate::instr::{BinOp, InstKind, PhiArg, UnaryOp};

/// Builder state: a function under construction plus the current block.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: Option<Block>,
}

impl FunctionBuilder {
    /// Start building a function with `num_params` parameters.
    pub fn new(name: impl Into<String>, num_params: usize) -> Self {
        let mut func = Function::new(name);
        func.num_params = num_params;
        FunctionBuilder {
            func,
            current: None,
        }
    }

    /// Create a new block (the first one becomes the entry).
    pub fn create_block(&mut self) -> Block {
        self.func.add_block()
    }

    /// Make `block` the insertion point for subsequent instructions.
    pub fn switch_to(&mut self, block: Block) {
        self.current = Some(block);
    }

    /// The current insertion block.
    ///
    /// # Panics
    /// Panics if [`switch_to`](Self::switch_to) has not been called.
    pub fn current_block(&self) -> Block {
        self.current
            .expect("no current block; call switch_to first")
    }

    /// Mint a fresh value without emitting an instruction.
    pub fn new_value(&mut self) -> Value {
        self.func.new_value()
    }

    fn emit(&mut self, kind: InstKind, dst: Option<Value>) -> Option<Value> {
        let block = self.current_block();
        self.func.append_inst(block, kind, dst);
        dst
    }

    fn emit_def(&mut self, kind: InstKind) -> Value {
        let dst = self.func.new_value();
        self.emit(kind, Some(dst));
        dst
    }

    /// Emit `dst = param index`.
    pub fn param(&mut self, index: usize) -> Value {
        self.emit_def(InstKind::Param { index })
    }

    /// Emit `dst = const imm`.
    pub fn iconst(&mut self, imm: i64) -> Value {
        self.emit_def(InstKind::Const { imm })
    }

    /// Emit `dst = copy src` into a fresh destination.
    pub fn copy(&mut self, src: Value) -> Value {
        self.emit_def(InstKind::Copy { src })
    }

    /// Emit `dst = copy src` into an existing destination register. This is
    /// how pre-SSA code assigns source variables.
    pub fn copy_to(&mut self, dst: Value, src: Value) {
        self.emit(InstKind::Copy { src }, Some(dst));
    }

    /// Emit a unary operation into a fresh destination.
    pub fn unary(&mut self, op: UnaryOp, a: Value) -> Value {
        self.emit_def(InstKind::Unary { op, a })
    }

    /// Emit a binary operation into a fresh destination.
    pub fn binary(&mut self, op: BinOp, a: Value, b: Value) -> Value {
        self.emit_def(InstKind::Binary { op, a, b })
    }

    /// Emit a binary operation into an existing destination register.
    pub fn binary_to(&mut self, dst: Value, op: BinOp, a: Value, b: Value) {
        self.emit(InstKind::Binary { op, a, b }, Some(dst));
    }

    /// Emit a constant into an existing destination register.
    pub fn iconst_to(&mut self, dst: Value, imm: i64) {
        self.emit(InstKind::Const { imm }, Some(dst));
    }

    /// Emit `dst = load addr`.
    pub fn load(&mut self, addr: Value) -> Value {
        self.emit_def(InstKind::Load { addr })
    }

    /// Emit a load into an existing destination register.
    pub fn load_to(&mut self, dst: Value, addr: Value) {
        self.emit(InstKind::Load { addr }, Some(dst));
    }

    /// Emit `store addr, val`.
    pub fn store(&mut self, addr: Value, val: Value) {
        self.emit(InstKind::Store { addr, val }, None);
    }

    /// Emit a φ-node at the head of `block` with the given destination.
    pub fn phi_in(&mut self, block: Block, args: Vec<PhiArg>, dst: Value) {
        self.func.prepend_phi(block, args, dst);
    }

    /// Terminate the current block with `branch cond, then_dst, else_dst`.
    pub fn branch(&mut self, cond: Value, then_dst: Block, else_dst: Block) {
        self.emit(
            InstKind::Branch {
                cond,
                then_dst,
                else_dst,
            },
            None,
        );
    }

    /// Terminate the current block with `jump dst`.
    pub fn jump(&mut self, dst: Block) {
        self.emit(InstKind::Jump { dst }, None);
    }

    /// Terminate the current block with `return`.
    pub fn ret(&mut self, val: Option<Value>) {
        self.emit(InstKind::Return { val }, None);
    }

    /// Finish building and return the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Access the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction, for edits the
    /// builder does not directly support.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn builds_verifiable_loop() {
        // while (i < n) i = i + 1; return i
        let mut b = FunctionBuilder::new("count", 1);
        let entry = b.create_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();

        b.switch_to(entry);
        let n = b.param(0);
        let i = b.new_value();
        b.iconst_to(i, 0);
        b.jump(header);

        b.switch_to(header);
        let c = b.binary(BinOp::Lt, i, n);
        b.branch(c, body, exit);

        b.switch_to(body);
        let one = b.iconst(1);
        b.binary_to(i, BinOp::Add, i, one);
        b.jump(header);

        b.switch_to(exit);
        b.ret(Some(i));

        let f = b.finish();
        verify_function(&f).expect("builder output verifies");
        assert_eq!(f.blocks().count(), 4);
    }

    #[test]
    #[should_panic(expected = "no current block")]
    fn emitting_without_block_panics() {
        let mut b = FunctionBuilder::new("oops", 0);
        b.iconst(1);
    }

    #[test]
    fn copy_to_reuses_destination() {
        let mut b = FunctionBuilder::new("c", 0);
        let e = b.create_block();
        b.switch_to(e);
        let x = b.iconst(5);
        let y = b.new_value();
        b.copy_to(y, x);
        b.ret(Some(y));
        let f = b.finish();
        assert_eq!(f.static_copy_count(), 1);
        verify_function(&f).unwrap();
    }
}
