//! # fcc-ir — the intermediate representation
//!
//! A compact, entity-indexed intermediate representation in the style of
//! Cranelift/LLVM: functions own arenas of basic [`Block`]s, [`Inst`]s, and
//! virtual-register [`Value`]s. The same IR serves before, during, and
//! after SSA: SSA-ness is a *property* (each value written once, every use
//! dominated by its definition) established by `fcc-ssa` and consumed by
//! the coalescing algorithms in `fcc-core` and `fcc-regalloc`.
//!
//! The crate provides:
//!
//! * [`function::Function`] — blocks, instructions, values, and CFG edits
//!   (including [`function::Function::split_edge`] for critical edges);
//! * [`instr`] — the instruction set: constants, copies, arithmetic,
//!   loads/stores on a flat memory, φ-nodes, and terminators;
//! * [`builder::FunctionBuilder`] — ergonomic programmatic construction;
//! * [`cfg::ControlFlowGraph`] — predecessors, postorder, critical edges;
//! * [`verify::verify_function`] — structural invariants, reported
//!   through the unified [`diagnostic::Diagnostic`] model that
//!   `fcc-ssa`'s SSA verifier and the `fcc-lint` rule registry share;
//! * [`parse`]/[`print`] — a round-tripping textual format.
//!
//! ## Example
//!
//! ```
//! use fcc_ir::parse::parse_function;
//! use fcc_ir::verify::verify_function;
//!
//! let f = parse_function(
//!     "function @max(2) {
//!      b0:
//!          v0 = param 0
//!          v1 = param 1
//!          v2 = max v0, v1
//!          return v2
//!      }",
//! )?;
//! verify_function(&f).unwrap();
//! assert_eq!(f.name, "max");
//! # Ok::<(), fcc_ir::parse::ParseError>(())
//! ```

pub mod builder;
pub mod cfg;
pub mod diagnostic;
pub mod entity;
pub mod function;
pub mod instr;
pub mod module;
pub mod parse;
pub mod print;
pub mod verify;

pub use builder::FunctionBuilder;
pub use cfg::ControlFlowGraph;
pub use diagnostic::{Diagnostic, Severity};
pub use entity::{EntityMap, EntityRef, SecondaryMap};
pub use function::{Block, Function, Inst, InstData, Value};
pub use instr::{BinOp, InstKind, PhiArg, UnaryOp};
pub use module::Module;
