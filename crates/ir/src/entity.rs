//! Entity references and entity-indexed maps.
//!
//! Compiler data structures are dominated by small, dense index spaces:
//! blocks, instructions, and values are all created in bulk and referenced
//! by index. Following the style of production IRs (LLVM's value numbering,
//! Cranelift's `entity` crate), we represent each of these as a newtype over
//! `u32` and store the payloads in flat vectors. This keeps all side tables
//! cache-friendly and makes cross-referencing trivially cheap.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// A type that can be used as a dense index into an [`EntityMap`] or
/// [`SecondaryMap`].
///
/// Implementors are plain `u32` newtypes created with [`entity_ref!`].
pub trait EntityRef: Copy + Eq + Hash + Ord {
    /// Create an entity reference from a raw index.
    fn new(index: usize) -> Self;
    /// The raw index of this entity.
    fn index(self) -> usize;
}

/// Declare a new entity reference type.
///
/// ```
/// use fcc_ir::entity_ref;
/// use fcc_ir::entity::EntityRef;
///
/// entity_ref!(Widget, "w");
/// let w = Widget::new(3);
/// assert_eq!(w.index(), 3);
/// assert_eq!(format!("{w}"), "w3");
/// ```
#[macro_export]
macro_rules! entity_ref {
    ($(#[$attr:meta])* $name:ident, $prefix:expr) => {
        $(#[$attr])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $crate::entity::EntityRef for $name {
            #[inline]
            fn new(index: usize) -> Self {
                debug_assert!(index < u32::MAX as usize);
                $name(index as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $name {
            /// Create an entity reference from a raw index.
            #[inline]
            pub fn new(index: usize) -> Self {
                <$name as $crate::entity::EntityRef>::new(index)
            }
            /// The raw index of this entity.
            #[inline]
            pub fn index(self) -> usize {
                <$name as $crate::entity::EntityRef>::index(self)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                ::std::fmt::Display::fmt(self, f)
            }
        }
    };
}

/// A primary map that owns entity payloads and mints new references.
///
/// Entities are allocated densely starting from index 0 and are never
/// deallocated individually; deletion is modelled by the client (e.g. an
/// instruction is removed from its block's list but its slot remains).
#[derive(Clone, PartialEq, Eq)]
pub struct EntityMap<K: EntityRef, V> {
    elems: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityRef, V> EntityMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        EntityMap {
            elems: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Create an empty map with room for `capacity` entities.
    pub fn with_capacity(capacity: usize) -> Self {
        EntityMap {
            elems: Vec::with_capacity(capacity),
            _marker: PhantomData,
        }
    }

    /// Allocate a new entity holding `value` and return its reference.
    pub fn push(&mut self, value: V) -> K {
        let k = K::new(self.elems.len());
        self.elems.push(value);
        k
    }

    /// Number of entities allocated so far.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether no entities have been allocated.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The reference that the next call to [`push`](Self::push) will return.
    pub fn next_key(&self) -> K {
        K::new(self.elems.len())
    }

    /// Whether `k` refers to an allocated entity.
    pub fn is_valid(&self, k: K) -> bool {
        k.index() < self.elems.len()
    }

    /// Iterate over all entity references in allocation order.
    pub fn keys(&self) -> impl DoubleEndedIterator<Item = K> + '_ {
        (0..self.elems.len()).map(K::new)
    }

    /// Iterate over `(reference, payload)` pairs in allocation order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (K, &V)> + '_ {
        self.elems.iter().enumerate().map(|(i, v)| (K::new(i), v))
    }

    /// Iterate over payloads in allocation order.
    pub fn values(&self) -> impl DoubleEndedIterator<Item = &V> + '_ {
        self.elems.iter()
    }

    /// Approximate heap size of the payload storage, in bytes.
    pub fn bytes(&self) -> usize {
        self.elems.capacity() * std::mem::size_of::<V>()
    }
}

impl<K: EntityRef, V> Default for EntityMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityRef, V> std::ops::Index<K> for EntityMap<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, k: K) -> &V {
        &self.elems[k.index()]
    }
}

impl<K: EntityRef, V> std::ops::IndexMut<K> for EntityMap<K, V> {
    #[inline]
    fn index_mut(&mut self, k: K) -> &mut V {
        &mut self.elems[k.index()]
    }
}

impl<K: EntityRef, V: fmt::Debug> fmt::Debug for EntityMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.elems.iter().enumerate())
            .finish()
    }
}

/// A secondary map associating data with entities minted elsewhere.
///
/// Missing entries read back as `V::default()`; writes grow the map on
/// demand. This mirrors how side tables behave in most compilers: an
/// analysis result exists for every entity, defaulting to "nothing known".
#[derive(Clone, PartialEq, Eq)]
pub struct SecondaryMap<K: EntityRef, V: Clone + Default> {
    elems: Vec<V>,
    default: V,
    _marker: PhantomData<K>,
}

impl<K: EntityRef, V: Clone + Default> SecondaryMap<K, V> {
    /// Create an empty secondary map.
    pub fn new() -> Self {
        SecondaryMap {
            elems: Vec::new(),
            default: V::default(),
            _marker: PhantomData,
        }
    }

    /// Create a secondary map pre-sized for `capacity` entities.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut m = Self::new();
        m.elems.resize(capacity, V::default());
        m
    }

    /// Ensure the map has a slot for `k`, then return a mutable reference.
    pub fn get_mut(&mut self, k: K) -> &mut V {
        if k.index() >= self.elems.len() {
            self.elems.resize(k.index() + 1, V::default());
        }
        &mut self.elems[k.index()]
    }

    /// Number of slots currently materialised.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether no slots are materialised.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Reset every slot to the default value.
    pub fn clear(&mut self) {
        self.elems.clear();
    }

    /// Approximate heap size of the payload storage, in bytes.
    pub fn bytes(&self) -> usize {
        self.elems.capacity() * std::mem::size_of::<V>()
    }
}

impl<K: EntityRef, V: Clone + Default> Default for SecondaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityRef, V: Clone + Default> std::ops::Index<K> for SecondaryMap<K, V> {
    type Output = V;
    #[inline]
    fn index(&self, k: K) -> &V {
        self.elems.get(k.index()).unwrap_or(&self.default)
    }
}

impl<K: EntityRef, V: Clone + Default> std::ops::IndexMut<K> for SecondaryMap<K, V> {
    #[inline]
    fn index_mut(&mut self, k: K) -> &mut V {
        self.get_mut(k)
    }
}

impl<K: EntityRef, V: Clone + Default + fmt::Debug> fmt::Debug for SecondaryMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.elems.iter().enumerate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    entity_ref!(TestRef, "t");

    #[test]
    fn entity_ref_roundtrip() {
        let t = TestRef::new(42);
        assert_eq!(t.index(), 42);
        assert_eq!(format!("{t}"), "t42");
        assert_eq!(format!("{t:?}"), "t42");
    }

    #[test]
    fn entity_ref_ordering_follows_index() {
        assert!(TestRef::new(1) < TestRef::new(2));
        assert_eq!(TestRef::new(7), TestRef::new(7));
    }

    #[test]
    fn entity_map_push_and_index() {
        let mut m: EntityMap<TestRef, &str> = EntityMap::new();
        assert!(m.is_empty());
        let a = m.push("a");
        let b = m.push("b");
        assert_eq!(m.len(), 2);
        assert_eq!(m[a], "a");
        assert_eq!(m[b], "b");
        m[a] = "z";
        assert_eq!(m[a], "z");
    }

    #[test]
    fn entity_map_keys_are_dense() {
        let mut m: EntityMap<TestRef, u32> = EntityMap::new();
        for i in 0..10 {
            let k = m.push(i);
            assert_eq!(k.index(), i as usize);
        }
        let keys: Vec<_> = m.keys().collect();
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[3].index(), 3);
        assert_eq!(m.next_key().index(), 10);
        assert!(m.is_valid(TestRef::new(9)));
        assert!(!m.is_valid(TestRef::new(10)));
    }

    #[test]
    fn entity_map_iter_pairs() {
        let mut m: EntityMap<TestRef, char> = EntityMap::new();
        m.push('x');
        m.push('y');
        let pairs: Vec<_> = m.iter().map(|(k, v)| (k.index(), *v)).collect();
        assert_eq!(pairs, vec![(0, 'x'), (1, 'y')]);
    }

    #[test]
    fn secondary_map_defaults_and_grows() {
        let mut s: SecondaryMap<TestRef, u64> = SecondaryMap::new();
        let far = TestRef::new(100);
        assert_eq!(s[far], 0);
        s[far] = 9;
        assert_eq!(s[far], 9);
        assert_eq!(s.len(), 101);
        assert_eq!(s[TestRef::new(50)], 0);
        s.clear();
        assert_eq!(s[far], 0);
    }
}
