//! Structural verification of functions.
//!
//! [`verify_function`] checks the invariants every pass in this workspace
//! relies on: block shape (φs, body, one terminator), φ arguments matching
//! predecessors, value indices in range, and destination presence per
//! instruction kind. SSA-specific properties (single assignment,
//! strictness/regularity) are checked separately by `fcc-ssa`, which has
//! the dominator machinery the check needs.
//!
//! The checks themselves live in [`structural_diagnostics`], which
//! reports *every* violation as a [`Diagnostic`] under the `structure`
//! rule — the form the `fcc-lint` rule registry consumes.
//! [`verify_function`] is the thin historical wrapper: first
//! error-severity diagnostic, wrapped as a [`VerifyError`].

use std::fmt;

use crate::cfg::ControlFlowGraph;
use crate::diagnostic::Diagnostic;
use crate::function::{Block, Function};
use crate::instr::InstKind;

/// Rule id of every structural finding.
pub const RULE_STRUCTURE: &str = "structure";

/// An invariant violation found by [`verify_function`] — a thin wrapper
/// over the [`Diagnostic`] that describes it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError(pub Diagnostic);

impl VerifyError {
    /// The block the violation was found in, if block-local.
    pub fn block(&self) -> Option<Block> {
        self.0.block
    }

    /// Human-readable description of the violation.
    pub fn message(&self) -> &str {
        &self.0.message
    }
}

impl fmt::Display for VerifyError {
    // One rendering path for every finding: the wrapper prints exactly
    // what the underlying `Diagnostic` prints (`error[structure] in
    // b0: ...`), so lint output and verifier errors read the same.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for VerifyError {}

fn err(block: impl Into<Option<Block>>, message: impl Into<String>) -> Diagnostic {
    Diagnostic::error(RULE_STRUCTURE, message).in_block(block.into())
}

/// Verify the structural invariants of `func`.
///
/// # Errors
///
/// Returns the first violation found:
/// * the function has no blocks, or a block has no terminator;
/// * a terminator appears before the end of a block;
/// * a φ-node appears after a non-φ instruction;
/// * a φ's predecessor keys do not exactly cover the block's predecessors;
/// * `param` appears outside the entry block head or out of range;
/// * a branch target or value index is out of range;
/// * an instruction's destination presence contradicts its kind.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    match structural_diagnostics(func).into_iter().next() {
        Some(d) => Err(VerifyError(d)),
        None => Ok(()),
    }
}

/// Report every structural violation in `func` as a [`Diagnostic`].
///
/// All findings are error severity under the [`RULE_STRUCTURE`] rule.
/// An empty result certifies the shape invariants that the dominator,
/// liveness, and SSA machinery assume; downstream checks (SSA
/// regularity, lint rules) are only meaningful once this is clean.
pub fn structural_diagnostics(func: &Function) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if func.blocks().next().is_none() {
        out.push(err(None, "function has no blocks"));
        return out;
    }
    let cfg = ControlFlowGraph::compute(func);
    let num_values = func.num_values();
    let num_blocks = func.num_blocks();

    // The entry must have no predecessors: a φ at the entry would have no
    // incoming edge for the initial activation, and every SSA algorithm
    // here assumes the entry strictly dominates the rest. Front ends that
    // need a loopable first block insert a fresh pre-header.
    if !cfg.preds(func.entry()).is_empty() {
        out.push(err(func.entry(), "entry block must have no predecessors"));
    }

    for block in func.blocks() {
        let insts = func.block_insts(block);
        match insts.last() {
            None => {
                out.push(err(block, "block is empty"));
                continue;
            }
            Some(&last) if !func.inst(last).kind.is_terminator() => {
                out.push(err(block, "block does not end with a terminator"));
            }
            _ => {}
        }

        let mut seen_non_phi = false;
        for (pos, &inst) in insts.iter().enumerate() {
            let data = func.inst(inst);
            let is_last = pos + 1 == insts.len();

            if data.kind.is_terminator() && !is_last {
                out.push(
                    err(block, format!("terminator {inst} is not last in block")).at_inst(inst),
                );
            }
            if data.kind.is_phi() {
                if seen_non_phi {
                    out.push(
                        err(block, format!("phi {inst} appears after non-phi code")).at_inst(inst),
                    );
                }
            } else {
                seen_non_phi = true;
            }

            // Destination presence must match the kind.
            let needs_dst = !matches!(
                data.kind,
                InstKind::Store { .. }
                    | InstKind::Spill { .. }
                    | InstKind::Branch { .. }
                    | InstKind::Jump { .. }
                    | InstKind::Return { .. }
            );
            if needs_dst && data.dst.is_none() {
                out.push(err(block, format!("{inst} must define a value")).at_inst(inst));
            }
            if !needs_dst && data.dst.is_some() {
                out.push(err(block, format!("{inst} must not define a value")).at_inst(inst));
            }
            if let Some(d) = data.dst {
                if d.index() >= num_values {
                    out.push(
                        err(block, format!("{inst} defines out-of-range value {d}"))
                            .at_inst(inst)
                            .on_value(d),
                    );
                }
            }

            // Value and block operand ranges.
            let mut bad_use = None;
            data.kind.for_each_use(|v| {
                if v.index() >= num_values && bad_use.is_none() {
                    bad_use = Some(v);
                }
            });
            if let Some(v) = bad_use {
                out.push(
                    err(block, format!("{inst} uses out-of-range value {v}"))
                        .at_inst(inst)
                        .on_value(v),
                );
            }
            for s in data.kind.successors() {
                if s.index() >= num_blocks {
                    out.push(
                        err(block, format!("{inst} targets out-of-range block {s}")).at_inst(inst),
                    );
                }
            }

            match &data.kind {
                InstKind::Param { index } => {
                    if block != func.entry() {
                        out.push(
                            err(block, format!("{inst}: param outside entry block")).at_inst(inst),
                        );
                    }
                    if *index >= func.num_params {
                        out.push(
                            err(block, format!("{inst}: param index {index} out of range"))
                                .at_inst(inst),
                        );
                    }
                }
                InstKind::Phi { args } => {
                    if !cfg.is_reachable(block) {
                        continue;
                    }
                    // φ keys must exactly cover the predecessor set.
                    let mut preds: Vec<Block> = cfg.preds(block).to_vec();
                    preds.sort_unstable();
                    preds.dedup();
                    let mut keys: Vec<Block> = args.iter().map(|a| a.pred).collect();
                    keys.sort_unstable();
                    let dup = keys.windows(2).any(|w| w[0] == w[1]);
                    if dup {
                        out.push(
                            err(block, format!("{inst}: duplicate phi predecessor")).at_inst(inst),
                        );
                    } else if keys != preds {
                        out.push(
                            err(
                                block,
                                format!(
                                    "{inst}: phi predecessors {keys:?} do not match block predecessors {preds:?}"
                                ),
                            )
                            .at_inst(inst),
                        );
                    }
                    for a in args {
                        if a.value.index() >= num_values {
                            out.push(
                                err(
                                    block,
                                    format!("{inst}: phi uses out-of-range value {}", a.value),
                                )
                                .at_inst(inst)
                                .on_value(a.value),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Value;
    use crate::instr::PhiArg;

    fn linear() -> (Function, Block) {
        let mut f = Function::new("lin");
        let b0 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v));
        f.append_inst(b0, InstKind::Return { val: Some(v) }, None);
        (f, b0)
    }

    #[test]
    fn accepts_minimal_function() {
        let (f, _) = linear();
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn rejects_empty_function() {
        let f = Function::new("empty");
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new("noterm");
        let b0 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v));
        let e = verify_function(&f).unwrap_err();
        assert!(e.to_string().contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let (mut f, b0) = linear();
        f.append_inst(b0, InstKind::Return { val: None }, None);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_missing_dst() {
        let (mut f, b0) = linear();
        f.insert_before_terminator(b0, InstKind::Const { imm: 2 }, None);
        let e = verify_function(&f).unwrap_err();
        assert!(e.to_string().contains("must define"), "{e}");
    }

    #[test]
    fn rejects_dst_on_store() {
        let (mut f, b0) = linear();
        let v = Value::new(0);
        let d = f.new_value();
        f.insert_before_terminator(b0, InstKind::Store { addr: v, val: v }, Some(d));
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_out_of_range_value() {
        let (mut f, b0) = linear();
        let bogus = Value::new(999);
        let d = f.new_value();
        f.insert_before_terminator(b0, InstKind::Copy { src: bogus }, Some(d));
        let e = verify_function(&f).unwrap_err();
        assert!(e.to_string().contains("out-of-range"), "{e}");
    }

    #[test]
    fn rejects_param_outside_entry() {
        let mut f = Function::new("p");
        f.num_params = 1;
        let b0 = f.add_block();
        let b1 = f.add_block();
        f.append_inst(b0, InstKind::Jump { dst: b1 }, None);
        let v = f.new_value();
        f.append_inst(b1, InstKind::Param { index: 0 }, Some(v));
        f.append_inst(b1, InstKind::Return { val: Some(v) }, None);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_phi_after_body() {
        let mut f = Function::new("phi_late");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v));
        f.append_inst(b0, InstKind::Jump { dst: b1 }, None);
        let w = f.new_value();
        let x = f.new_value();
        f.append_inst(b1, InstKind::Copy { src: v }, Some(w));
        f.append_inst(
            b1,
            InstKind::Phi {
                args: vec![PhiArg { pred: b0, value: v }],
            },
            Some(x),
        );
        f.append_inst(b1, InstKind::Return { val: Some(x) }, None);
        let e = verify_function(&f).unwrap_err();
        assert!(e.to_string().contains("after non-phi"), "{e}");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut f = Function::new("phi_mismatch");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v));
        f.append_inst(b0, InstKind::Jump { dst: b1 }, None);
        let x = f.new_value();
        // Key the phi by b1 (not a predecessor).
        f.prepend_phi(b1, vec![PhiArg { pred: b1, value: v }], x);
        f.append_inst(b1, InstKind::Return { val: Some(x) }, None);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn accepts_phi_matching_preds() {
        let mut f = Function::new("phi_ok");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v));
        f.append_inst(
            b0,
            InstKind::Branch {
                cond: v,
                then_dst: b1,
                else_dst: b2,
            },
            None,
        );
        f.append_inst(b1, InstKind::Jump { dst: b2 }, None);
        let x = f.new_value();
        f.prepend_phi(
            b2,
            vec![PhiArg { pred: b0, value: v }, PhiArg { pred: b1, value: v }],
            x,
        );
        f.append_inst(b2, InstKind::Return { val: Some(x) }, None);
        verify_function(&f).unwrap();
    }

    #[test]
    fn diagnostics_report_every_violation() {
        // Two independent problems: a missing dst and an out-of-range use.
        let (mut f, b0) = linear();
        f.insert_before_terminator(b0, InstKind::Const { imm: 2 }, None);
        let d = f.new_value();
        f.insert_before_terminator(
            b0,
            InstKind::Copy {
                src: Value::new(999),
            },
            Some(d),
        );
        let diags = structural_diagnostics(&f);
        assert!(diags.len() >= 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == RULE_STRUCTURE));
        assert!(diags.iter().all(|d| d.is_error()));
    }
}
