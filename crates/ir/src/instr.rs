//! Instruction definitions.
//!
//! The IR is a conventional three-address code over 64-bit integer virtual
//! registers ([`Value`]s), with explicit `copy` instructions, φ-nodes, and a
//! small load/store interface onto a flat memory. This is deliberately close
//! to the code shape the paper's algorithms consume: what matters to copy
//! coalescing is the control-flow structure, definitions, uses, copies, and
//! φ-congruence — not a rich type system.

use crate::function::{Block, Value};

/// Binary arithmetic, comparison, and bitwise operators.
///
/// Comparisons produce `1` for true and `0` for false. Division and
/// remainder are total: a zero divisor yields `0` (keeping the interpreter
/// free of traps so that randomly generated programs always run).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division; `x / 0 == 0`.
    Div,
    /// Remainder; `x % 0 == 0`.
    Rem,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left by `b & 63`.
    Shl,
    /// Arithmetic shift right by `b & 63`.
    Shr,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl BinOp {
    /// The textual mnemonic used by the IR printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// Parse a mnemonic back into an operator.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "eq" => BinOp::Eq,
            "ne" => BinOp::Ne,
            "lt" => BinOp::Lt,
            "le" => BinOp::Le,
            "gt" => BinOp::Gt,
            "ge" => BinOp::Ge,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            _ => return None,
        })
    }

    /// Evaluate the operator on concrete values.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// All operators, for exhaustive testing.
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Min,
            BinOp::Max,
        ]
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryOp {
    /// Wrapping negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnaryOp {
    /// The textual mnemonic used by the IR printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
        }
    }

    /// Parse a mnemonic back into an operator.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "neg" => UnaryOp::Neg,
            "not" => UnaryOp::Not,
            _ => return None,
        })
    }

    /// Evaluate the operator on a concrete value.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnaryOp::Neg => a.wrapping_neg(),
            UnaryOp::Not => !a,
        }
    }
}

/// One φ-node argument: the value flowing in along the edge from `pred`.
///
/// φ arguments are keyed by predecessor block rather than by position so
/// that edge splitting and branch retargeting can update them reliably.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhiArg {
    /// The predecessor block the value flows out of.
    pub pred: Block,
    /// The value flowing along the `pred` edge.
    pub value: Value,
}

/// The operation an instruction performs. Destinations live in
/// [`InstData`](crate::function::InstData), not here.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InstKind {
    /// Materialise the `index`-th function parameter. Only legal in the
    /// entry block, before any non-`param` instruction.
    Param { index: usize },
    /// Load a constant.
    Const { imm: i64 },
    /// Register-to-register move: the instruction the whole paper is about.
    Copy { src: Value },
    /// Unary operation.
    Unary { op: UnaryOp, a: Value },
    /// Binary operation.
    Binary { op: BinOp, a: Value, b: Value },
    /// Read `mem[addr]` (flat i64-addressed memory; an out-of-range
    /// address traps — see the `fcc-interp` module docs for the
    /// normative rule).
    Load { addr: Value },
    /// Write `mem[addr] = val` (out-of-range traps, like `Load`).
    Store { addr: Value, val: Value },
    /// Save `val` into spill slot `slot`. Spill slots are a flat,
    /// zero-initialised storage space **disjoint from the `Load`/`Store`
    /// memory** — they model stack slots materialised by the register
    /// allocator, never trap, and are invisible to program `behavior()`.
    Spill { slot: u32, val: Value },
    /// Read spill slot `slot` back into a register. Defines a destination
    /// like any other value-producing instruction; the spiller always
    /// creates a *fresh* SSA name per reload so spilled code stays
    /// strict-SSA (and therefore chordal).
    Reload { slot: u32 },
    /// SSA φ-node. Must appear at the head of its block.
    Phi { args: Vec<PhiArg> },
    /// Two-way conditional branch on `cond != 0`. Terminator.
    Branch {
        cond: Value,
        then_dst: Block,
        else_dst: Block,
    },
    /// Unconditional jump. Terminator.
    Jump { dst: Block },
    /// Return from the function. Terminator.
    Return { val: Option<Value> },
}

impl InstKind {
    /// Whether this instruction ends its block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Branch { .. } | InstKind::Jump { .. } | InstKind::Return { .. }
        )
    }

    /// Whether this instruction is a φ-node.
    pub fn is_phi(&self) -> bool {
        matches!(self, InstKind::Phi { .. })
    }

    /// Whether this instruction is a register-to-register copy.
    pub fn is_copy(&self) -> bool {
        matches!(self, InstKind::Copy { .. })
    }

    /// The blocks this terminator can transfer control to (empty for
    /// non-terminators and returns).
    pub fn successors(&self) -> Vec<Block> {
        match self {
            InstKind::Branch {
                then_dst, else_dst, ..
            } => vec![*then_dst, *else_dst],
            InstKind::Jump { dst } => vec![*dst],
            _ => Vec::new(),
        }
    }

    /// Visit every value this instruction *uses*.
    ///
    /// φ arguments are **not** visited: a φ's uses occur on the incoming
    /// edges, not inside the block, and every analysis in this workspace
    /// must handle them specially (cf. Section 2 of the paper).
    pub fn for_each_use(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Param { .. } | InstKind::Const { .. } | InstKind::Phi { .. } => {}
            InstKind::Copy { src } => f(*src),
            InstKind::Unary { a, .. } => f(*a),
            InstKind::Binary { a, b, .. } => {
                f(*a);
                f(*b);
            }
            InstKind::Load { addr } => f(*addr),
            InstKind::Store { addr, val } => {
                f(*addr);
                f(*val);
            }
            InstKind::Spill { val, .. } => f(*val),
            InstKind::Reload { .. } => {}
            InstKind::Branch { cond, .. } => f(*cond),
            InstKind::Jump { .. } => {}
            InstKind::Return { val } => {
                if let Some(v) = val {
                    f(*v);
                }
            }
        }
    }

    /// Rewrite every value this instruction uses (φ arguments excluded, as
    /// in [`for_each_use`](Self::for_each_use)).
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            InstKind::Param { .. } | InstKind::Const { .. } | InstKind::Phi { .. } => {}
            InstKind::Copy { src } => f(src),
            InstKind::Unary { a, .. } => f(a),
            InstKind::Binary { a, b, .. } => {
                f(a);
                f(b);
            }
            InstKind::Load { addr } => f(addr),
            InstKind::Store { addr, val } => {
                f(addr);
                f(val);
            }
            InstKind::Spill { val, .. } => f(val),
            InstKind::Reload { .. } => {}
            InstKind::Branch { cond, .. } => f(cond),
            InstKind::Jump { .. } => {}
            InstKind::Return { val } => {
                if let Some(v) = val {
                    f(v);
                }
            }
        }
    }

    /// Rewrite the successor blocks of a terminator.
    pub fn for_each_successor_mut(&mut self, mut f: impl FnMut(&mut Block)) {
        match self {
            InstKind::Branch {
                then_dst, else_dst, ..
            } => {
                f(then_dst);
                f(else_dst);
            }
            InstKind::Jump { dst } => f(dst),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_mnemonic_roundtrip() {
        for &op in BinOp::all() {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn unary_mnemonic_roundtrip() {
        for op in [UnaryOp::Neg, UnaryOp::Not] {
            assert_eq!(UnaryOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn division_is_total() {
        assert_eq!(BinOp::Div.eval(5, 0), 0);
        assert_eq!(BinOp::Rem.eval(5, 0), 0);
        // i64::MIN / -1 must not trap either.
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(BinOp::Rem.eval(i64::MIN, -1), 0);
    }

    #[test]
    fn comparisons_produce_bool_ints() {
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Lt.eval(2, 1), 0);
        assert_eq!(BinOp::Ge.eval(2, 2), 1);
        assert_eq!(BinOp::Eq.eval(-3, -3), 1);
        assert_eq!(BinOp::Ne.eval(-3, -3), 0);
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(BinOp::Shl.eval(1, 64), 1);
        assert_eq!(BinOp::Shl.eval(1, 65), 2);
        assert_eq!(BinOp::Shr.eval(-8, 1), -4);
    }

    #[test]
    fn unary_eval() {
        assert_eq!(UnaryOp::Neg.eval(5), -5);
        assert_eq!(UnaryOp::Neg.eval(i64::MIN), i64::MIN);
        assert_eq!(UnaryOp::Not.eval(0), -1);
    }

    #[test]
    fn terminator_classification() {
        let j = InstKind::Jump { dst: Block::new(0) };
        assert!(j.is_terminator());
        assert!(!j.is_phi());
        let c = InstKind::Copy { src: Value::new(0) };
        assert!(c.is_copy());
        assert!(!c.is_terminator());
    }

    #[test]
    fn use_visitors_skip_phi_args() {
        let phi = InstKind::Phi {
            args: vec![PhiArg {
                pred: Block::new(0),
                value: Value::new(7),
            }],
        };
        let mut seen = Vec::new();
        phi.for_each_use(|v| seen.push(v));
        assert!(seen.is_empty(), "phi args must not appear as ordinary uses");
    }

    #[test]
    fn use_visitors_cover_all_operands() {
        let st = InstKind::Store {
            addr: Value::new(1),
            val: Value::new(2),
        };
        let mut seen = Vec::new();
        st.for_each_use(|v| seen.push(v.index()));
        assert_eq!(seen, vec![1, 2]);

        let mut bin = InstKind::Binary {
            op: BinOp::Add,
            a: Value::new(3),
            b: Value::new(4),
        };
        bin.for_each_use_mut(|v| *v = Value::new(v.index() + 10));
        match bin {
            InstKind::Binary { a, b, .. } => {
                assert_eq!(a.index(), 13);
                assert_eq!(b.index(), 14);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn successors_of_terminators() {
        let br = InstKind::Branch {
            cond: Value::new(0),
            then_dst: Block::new(1),
            else_dst: Block::new(2),
        };
        assert_eq!(br.successors(), vec![Block::new(1), Block::new(2)]);
        let ret = InstKind::Return { val: None };
        assert!(ret.successors().is_empty());
    }
}
