//! The [`Function`] container: blocks, instructions, and values.

use crate::entity::EntityMap;
use crate::entity_ref;
use crate::instr::{InstKind, PhiArg};

entity_ref!(
    /// A basic block reference.
    Block,
    "b"
);
entity_ref!(
    /// An instruction reference.
    Inst,
    "i"
);
entity_ref!(
    /// A virtual register. Before SSA construction a `Value` may have many
    /// definitions; in SSA form each has exactly one.
    Value,
    "v"
);

/// An instruction: an operation plus an optional destination register.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstData {
    /// What the instruction does.
    pub kind: InstKind,
    /// The register the instruction writes, if any.
    pub dst: Option<Value>,
}

impl InstData {
    /// Visit every value used by this instruction (φ args excluded; see
    /// [`InstKind::for_each_use`]).
    pub fn for_each_use(&self, f: impl FnMut(Value)) {
        self.kind.for_each_use(f)
    }
}

/// Payload of a basic block: its instructions in program order.
///
/// Invariants (checked by [`crate::verify::verify_function`]):
/// φ-nodes first, then ordinary instructions, then exactly one terminator.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BlockData {
    insts: Vec<Inst>,
}

/// A single function: the unit all analyses and transformations operate on.
///
/// Blocks, instructions, and values live in entity arenas owned by the
/// function. Deleting an instruction removes it from its block's list; the
/// arena slot stays behind (a tombstone) so existing references never
/// dangle.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name, used by the printer/parser and the workload registry.
    pub name: String,
    /// Number of parameters the function expects.
    pub num_params: usize,
    insts: EntityMap<Inst, InstData>,
    blocks: EntityMap<Block, BlockData>,
    /// Blocks in layout (printing / iteration) order; entry is first.
    layout: Vec<Block>,
    entry: Option<Block>,
    num_values: usize,
    /// Modification epoch: advanced by every mutating edit, globally
    /// unique across all `Function` values in the process. Analyses
    /// cached against an epoch (see `fcc_analysis::AnalysisManager`) are
    /// valid exactly while `epoch()` still returns the same number.
    epoch: u64,
}

/// Epochs are drawn from one process-wide counter so that two functions
/// (or two diverged clones of one function) can never share an epoch
/// after a mutation — a cached analysis can therefore never be revived
/// by accident, even if a manager is reused across functions.
fn next_epoch() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Structural equality ignores the epoch: a rebuilt function with the
/// same code compares equal even though its edit history differs.
impl PartialEq for Function {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.num_params == other.num_params
            && self.insts == other.insts
            && self.blocks == other.blocks
            && self.layout == other.layout
            && self.entry == other.entry
            && self.num_values == other.num_values
    }
}

impl Eq for Function {}

impl Function {
    /// Create an empty function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            num_params: 0,
            insts: EntityMap::new(),
            blocks: EntityMap::new(),
            layout: Vec::new(),
            entry: None,
            num_values: 0,
            epoch: next_epoch(),
        }
    }

    /// The current modification epoch. Any mutating call changes this.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the epoch: the function's code (possibly) changed, so all
    /// cached analyses are stale. Every `&mut self` editing method calls
    /// this; external callers only need it after mutating instruction
    /// payloads through long-lived raw pointers or similar exotica.
    pub fn bump_epoch(&mut self) {
        self.epoch = next_epoch();
    }

    // ----- creation -------------------------------------------------------

    /// Append a new, empty block to the layout. The first block created
    /// becomes the entry block.
    pub fn add_block(&mut self) -> Block {
        self.bump_epoch();
        let b = self.blocks.push(BlockData::default());
        self.layout.push(b);
        if self.entry.is_none() {
            self.entry = Some(b);
        }
        b
    }

    /// Mint a fresh virtual register.
    pub fn new_value(&mut self) -> Value {
        self.bump_epoch();
        let v = Value::new(self.num_values);
        self.num_values += 1;
        v
    }

    /// Number of virtual registers minted so far. All `Value` indices are
    /// below this bound, so it sizes dense side tables.
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// Grow the value space so that indices `0..n` are all valid. Used by
    /// the parser, where values appear by name in arbitrary order.
    pub fn ensure_value_capacity(&mut self, n: usize) {
        if n > self.num_values {
            self.bump_epoch();
            self.num_values = n;
        }
    }

    /// Number of blocks created so far (including any later emptied).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of instruction slots created so far (including tombstones).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// The entry block.
    ///
    /// # Panics
    /// Panics if no block has been created yet.
    pub fn entry(&self) -> Block {
        self.entry.expect("function has no entry block")
    }

    /// Make `block` the entry. It must be in the layout; it is moved to
    /// the front so that `blocks()` always yields the entry first.
    ///
    /// # Panics
    /// Panics if `block` is not in the layout.
    pub fn set_entry(&mut self, block: Block) {
        self.bump_epoch();
        let pos = self
            .layout
            .iter()
            .position(|&b| b == block)
            .expect("entry must be a layout block");
        self.layout.remove(pos);
        self.layout.insert(0, block);
        self.entry = Some(block);
    }

    /// Remove `block` from the layout (the arena slot remains as a
    /// tombstone). Used to drop unreachable blocks.
    ///
    /// # Panics
    /// Panics if `block` is the entry.
    pub fn remove_block_from_layout(&mut self, block: Block) {
        assert!(Some(block) != self.entry, "cannot remove the entry block");
        self.bump_epoch();
        self.layout.retain(|&b| b != block);
    }

    // ----- instruction insertion -----------------------------------------

    /// Append an instruction to the end of `block`.
    pub fn append_inst(&mut self, block: Block, kind: InstKind, dst: Option<Value>) -> Inst {
        self.bump_epoch();
        let inst = self.insts.push(InstData { kind, dst });
        self.blocks[block].insts.push(inst);
        inst
    }

    /// Insert an instruction immediately before `block`'s terminator.
    ///
    /// # Panics
    /// Panics if the block has no terminator.
    pub fn insert_before_terminator(
        &mut self,
        block: Block,
        kind: InstKind,
        dst: Option<Value>,
    ) -> Inst {
        self.bump_epoch();
        let inst = self.insts.push(InstData { kind, dst });
        let insts = &mut self.blocks[block].insts;
        let term_pos = insts
            .iter()
            .position(|&i| self.insts[i].kind.is_terminator())
            .expect("block has no terminator");
        insts.insert(term_pos, inst);
        inst
    }

    /// Insert an ordinary instruction at the very front of `block`, before
    /// any φ-nodes. Used to materialise strictness initialisations in the
    /// entry block (which never has φs).
    pub fn prepend_inst(&mut self, block: Block, kind: InstKind, dst: Option<Value>) -> Inst {
        self.bump_epoch();
        let inst = self.insts.push(InstData { kind, dst });
        self.blocks[block].insts.insert(0, inst);
        inst
    }

    /// Insert an instruction at position `pos` within `block`'s
    /// instruction list. Used by spill-code insertion.
    ///
    /// # Panics
    /// Panics if `pos` is beyond the end of the block.
    pub fn insert_inst_at(
        &mut self,
        block: Block,
        pos: usize,
        kind: InstKind,
        dst: Option<Value>,
    ) -> Inst {
        self.bump_epoch();
        let inst = self.insts.push(InstData { kind, dst });
        self.blocks[block].insts.insert(pos, inst);
        inst
    }

    /// Insert a φ-node at the head of `block`.
    pub fn prepend_phi(&mut self, block: Block, args: Vec<PhiArg>, dst: Value) -> Inst {
        self.bump_epoch();
        let inst = self.insts.push(InstData {
            kind: InstKind::Phi { args },
            dst: Some(dst),
        });
        self.blocks[block].insts.insert(0, inst);
        inst
    }

    /// Remove `inst` from `block`'s instruction list (the arena slot
    /// remains as a tombstone).
    pub fn remove_inst(&mut self, block: Block, inst: Inst) {
        self.bump_epoch();
        self.blocks[block].insts.retain(|&i| i != inst);
    }

    /// Append an existing instruction (previously removed from another
    /// block) to the end of `block`. Used when merging blocks.
    pub fn relink_inst_at_end(&mut self, block: Block, inst: Inst) {
        self.bump_epoch();
        self.blocks[block].insts.push(inst);
    }

    /// Remove every instruction of `block` for which `pred` returns true.
    pub fn retain_insts(&mut self, block: Block, mut pred: impl FnMut(Inst, &InstData) -> bool) {
        self.bump_epoch();
        let insts = std::mem::take(&mut self.blocks[block].insts);
        self.blocks[block].insts = insts
            .into_iter()
            .filter(|&i| pred(i, &self.insts[i]))
            .collect();
    }

    // ----- access ---------------------------------------------------------

    /// Blocks in layout order (entry first).
    pub fn blocks(&self) -> impl DoubleEndedIterator<Item = Block> + '_ {
        self.layout.iter().copied()
    }

    /// The instructions of `block`, in program order.
    pub fn block_insts(&self, block: Block) -> &[Inst] {
        &self.blocks[block].insts
    }

    /// Shared access to an instruction.
    pub fn inst(&self, inst: Inst) -> &InstData {
        &self.insts[inst]
    }

    /// Mutable access to an instruction.
    pub fn inst_mut(&mut self, inst: Inst) -> &mut InstData {
        // Conservative: handing out `&mut` counts as an edit.
        self.bump_epoch();
        &mut self.insts[inst]
    }

    /// The terminator of `block`, if it has one.
    pub fn terminator(&self, block: Block) -> Option<Inst> {
        self.blocks[block]
            .insts
            .last()
            .copied()
            .filter(|&i| self.insts[i].kind.is_terminator())
    }

    /// The successor blocks of `block` (empty if it ends in a return or is
    /// unterminated).
    pub fn successors(&self, block: Block) -> Vec<Block> {
        match self.terminator(block) {
            Some(t) => self.insts[t].kind.successors(),
            None => Vec::new(),
        }
    }

    /// Iterate over the φ-nodes at the head of `block`.
    pub fn block_phis(&self, block: Block) -> impl Iterator<Item = Inst> + '_ {
        self.blocks[block]
            .insts
            .iter()
            .copied()
            .take_while(move |&i| self.insts[i].kind.is_phi())
    }

    /// Total instructions currently linked into blocks.
    pub fn live_inst_count(&self) -> usize {
        self.layout
            .iter()
            .map(|&b| self.blocks[b].insts.len())
            .sum()
    }

    /// Count the `copy` instructions currently in the function — the
    /// paper's *static copies* metric (Table 5).
    pub fn static_copy_count(&self) -> usize {
        self.layout
            .iter()
            .flat_map(|&b| self.blocks[b].insts.iter())
            .filter(|&&i| self.insts[i].kind.is_copy())
            .count()
    }

    /// Count φ-nodes currently in the function.
    pub fn phi_count(&self) -> usize {
        self.layout
            .iter()
            .flat_map(|&b| self.blocks[b].insts.iter())
            .filter(|&&i| self.insts[i].kind.is_phi())
            .count()
    }

    /// Whether the function contains any φ-nodes.
    pub fn has_phis(&self) -> bool {
        self.phi_count() > 0
    }

    /// One past the highest spill-slot index named by any `spill`/`reload`
    /// instruction in layout order, or 0 when the function spills nothing.
    /// The interpreter sizes its slot storage from this, and the register
    /// allocator numbers fresh residual slots starting here.
    pub fn spill_slot_count(&self) -> u32 {
        let mut count = 0u32;
        for &b in &self.layout {
            for &i in &self.blocks[b].insts {
                if let crate::instr::InstKind::Spill { slot, .. }
                | crate::instr::InstKind::Reload { slot } = self.insts[i].kind
                {
                    count = count.max(slot + 1);
                }
            }
        }
        count
    }

    // ----- CFG edits ------------------------------------------------------

    /// Split the edge `pred → succ`: create a fresh block containing only a
    /// jump to `succ`, retarget `pred`'s terminator, and rewrite the
    /// predecessor keys of `succ`'s φ-nodes. Returns the new block.
    ///
    /// This is the standard fix for the *lost-copy problem* (Section 3.6):
    /// with no critical edges, a copy for a φ argument can always be placed
    /// at the end of the (possibly new) predecessor block.
    ///
    /// # Panics
    /// Panics if `pred` has no terminator or no edge to `succ`.
    pub fn split_edge(&mut self, pred: Block, succ: Block) -> Block {
        self.bump_epoch();
        let mid = self.add_block();
        self.append_inst(mid, InstKind::Jump { dst: succ }, None);

        let term = self.terminator(pred).expect("pred has no terminator");
        let mut retargeted = false;
        self.insts[term].kind.for_each_successor_mut(|d| {
            if *d == succ && !retargeted {
                *d = mid;
                retargeted = true;
            }
        });
        assert!(retargeted, "no edge {pred} -> {succ} to split");

        // Re-key succ's φ arguments from pred to the new middle block. A
        // branch can carry *two* edges to the same successor; splitting
        // one of them must leave the other's argument behind (duplicated
        // under the new key), or the second edge loses its value.
        let still_has_edge = self.insts[term].kind.successors().contains(&succ);
        let phis: Vec<Inst> = self.block_phis(succ).collect();
        for phi in phis {
            if let InstKind::Phi { args } = &mut self.insts[phi].kind {
                if still_has_edge {
                    let dup: Vec<PhiArg> = args
                        .iter()
                        .filter(|a| a.pred == pred)
                        .map(|a| PhiArg {
                            pred: mid,
                            value: a.value,
                        })
                        .collect();
                    args.extend(dup);
                } else {
                    for arg in args.iter_mut() {
                        if arg.pred == pred {
                            arg.pred = mid;
                        }
                    }
                }
            }
        }
        mid
    }

    /// Drop every block that is unreachable from the entry. Returns how
    /// many were removed. Passes that rewrite only reachable code (SSA
    /// construction in particular) call this first so no stale
    /// instructions survive in dead blocks.
    pub fn remove_unreachable_blocks(&mut self) -> usize {
        self.bump_epoch();
        let entry = self.entry();
        let mut reachable = vec![false; self.blocks.len()];
        reachable[entry.index()] = true;
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            for s in self.successors(b) {
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        let before = self.layout.len();
        self.layout.retain(|&b| reachable[b.index()]);
        // φ arguments keyed by now-dead predecessors must be dropped too.
        let layout = self.layout.clone();
        for &b in &layout {
            let phis: Vec<Inst> = self.block_phis(b).collect();
            for phi in phis {
                if let InstKind::Phi { args } = &mut self.insts[phi].kind {
                    args.retain(|a| reachable[a.pred.index()]);
                }
            }
        }
        before - self.layout.len()
    }

    /// Approximate heap footprint of the function body, in bytes.
    pub fn bytes(&self) -> usize {
        self.insts.bytes()
            + self.blocks.bytes()
            + self.layout.capacity() * std::mem::size_of::<Block>()
            + self
                .layout
                .iter()
                .map(|&b| self.blocks[b].insts.capacity() * std::mem::size_of::<Inst>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;

    fn tiny() -> (Function, Block, Block, Block) {
        // b0: v0 = const 1; branch v0, b1, b2
        // b1: jump b2
        // b2: return v0
        let mut f = Function::new("tiny");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let v0 = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v0));
        f.append_inst(
            b0,
            InstKind::Branch {
                cond: v0,
                then_dst: b1,
                else_dst: b2,
            },
            None,
        );
        f.append_inst(b1, InstKind::Jump { dst: b2 }, None);
        f.append_inst(b2, InstKind::Return { val: Some(v0) }, None);
        (f, b0, b1, b2)
    }

    #[test]
    fn entry_is_first_block() {
        let (f, b0, _, _) = tiny();
        assert_eq!(f.entry(), b0);
        assert_eq!(f.blocks().next(), Some(b0));
    }

    #[test]
    fn successors_follow_terminators() {
        let (f, b0, b1, b2) = tiny();
        assert_eq!(f.successors(b0), vec![b1, b2]);
        assert_eq!(f.successors(b1), vec![b2]);
        assert!(f.successors(b2).is_empty());
    }

    #[test]
    fn insert_before_terminator_keeps_terminator_last() {
        let (mut f, b0, _, _) = tiny();
        let v = f.new_value();
        f.insert_before_terminator(b0, InstKind::Const { imm: 9 }, Some(v));
        let insts = f.block_insts(b0);
        assert_eq!(insts.len(), 3);
        assert!(f.inst(*insts.last().unwrap()).kind.is_terminator());
        assert_eq!(f.inst(insts[1]).dst, Some(v));
    }

    #[test]
    fn prepend_phi_goes_first() {
        let (mut f, _, _, b2) = tiny();
        let v = f.new_value();
        f.prepend_phi(b2, vec![], v);
        let head = f.block_insts(b2)[0];
        assert!(f.inst(head).kind.is_phi());
        assert_eq!(f.block_phis(b2).count(), 1);
    }

    #[test]
    fn split_edge_rewrites_phi_keys_and_branch() {
        let (mut f, b0, b1, b2) = tiny();
        let v = f.new_value();
        let v0 = Value::new(0);
        f.prepend_phi(
            b2,
            vec![
                PhiArg {
                    pred: b0,
                    value: v0,
                },
                PhiArg {
                    pred: b1,
                    value: v0,
                },
            ],
            v,
        );
        // The b0 -> b2 edge is critical (b0 has 2 succs, b2 has 2 preds).
        let mid = f.split_edge(b0, b2);
        assert_eq!(f.successors(b0), vec![b1, mid]);
        assert_eq!(f.successors(mid), vec![b2]);
        let phi = f.block_phis(b2).next().unwrap();
        match &f.inst(phi).kind {
            InstKind::Phi { args } => {
                let preds: Vec<Block> = args.iter().map(|a| a.pred).collect();
                assert!(preds.contains(&mid));
                assert!(!preds.contains(&b0));
                assert!(preds.contains(&b1));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn split_duplicate_edge_keeps_other_args() {
        // branch with both arms to b1: splitting one edge must leave the
        // other edge's φ argument intact (regression: seed 276 of the
        // coalescer property suite).
        let mut f = Function::new("dup");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let v0 = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v0));
        f.append_inst(
            b0,
            InstKind::Branch {
                cond: v0,
                then_dst: b1,
                else_dst: b1,
            },
            None,
        );
        let p = f.new_value();
        f.prepend_phi(
            b1,
            vec![PhiArg {
                pred: b0,
                value: v0,
            }],
            p,
        );
        f.append_inst(b1, InstKind::Return { val: Some(p) }, None);

        let mid1 = f.split_edge(b0, b1);
        // The φ must now have args for BOTH mid1 and the remaining b0 edge.
        let phi = f.block_phis(b1).next().unwrap();
        let keys = |f: &Function, phi| match &f.inst(phi).kind {
            InstKind::Phi { args } => {
                let mut k: Vec<Block> = args.iter().map(|a| a.pred).collect();
                k.sort_unstable();
                k
            }
            _ => unreachable!(),
        };
        assert_eq!(keys(&f, phi), vec![b0, mid1]);

        let mid2 = f.split_edge(b0, b1);
        assert_eq!(keys(&f, phi), vec![mid1, mid2]);
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn remove_unreachable_blocks_drops_dead_code() {
        let mut f = Function::new("dead");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block(); // unreachable
        let v0 = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v0));
        f.append_inst(b0, InstKind::Jump { dst: b1 }, None);
        let p = f.new_value();
        f.prepend_phi(
            b1,
            vec![
                PhiArg {
                    pred: b0,
                    value: v0,
                },
                PhiArg {
                    pred: b2,
                    value: v0,
                },
            ],
            p,
        );
        f.append_inst(b1, InstKind::Return { val: Some(p) }, None);
        f.append_inst(b2, InstKind::Jump { dst: b1 }, None);

        assert_eq!(f.remove_unreachable_blocks(), 1);
        assert_eq!(f.blocks().count(), 2);
        // The stale φ key from b2 is gone too.
        let phi = f.block_phis(b1).next().unwrap();
        match &f.inst(phi).kind {
            InstKind::Phi { args } => assert_eq!(args.len(), 1),
            _ => unreachable!(),
        }
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn static_copy_count_counts_only_copies() {
        let (mut f, b0, _, _) = tiny();
        let v0 = Value::new(0);
        let v = f.new_value();
        f.insert_before_terminator(b0, InstKind::Copy { src: v0 }, Some(v));
        let w = f.new_value();
        f.insert_before_terminator(
            b0,
            InstKind::Binary {
                op: BinOp::Add,
                a: v0,
                b: v,
            },
            Some(w),
        );
        assert_eq!(f.static_copy_count(), 1);
    }

    #[test]
    fn remove_inst_unlinks() {
        let (mut f, b0, _, _) = tiny();
        let v = f.new_value();
        let inst = f.insert_before_terminator(b0, InstKind::Const { imm: 3 }, Some(v));
        assert_eq!(f.block_insts(b0).len(), 3);
        f.remove_inst(b0, inst);
        assert_eq!(f.block_insts(b0).len(), 2);
    }

    #[test]
    fn retain_insts_filters() {
        let (mut f, b0, _, _) = tiny();
        let v = f.new_value();
        f.insert_before_terminator(b0, InstKind::Copy { src: Value::new(0) }, Some(v));
        f.retain_insts(b0, |_, data| !data.kind.is_copy());
        assert_eq!(f.static_copy_count(), 0);
        assert!(f.terminator(b0).is_some());
    }
}
