//! The [`Module`] container: many named functions, one compilation unit.
//!
//! Per-function analyses in this workspace are independent by
//! construction — every `AnalysisManager` is keyed to one [`Function`]'s
//! modification epoch — so a module is deliberately nothing more than an
//! ordered list of functions with unique names. That ordering is load
//! bearing: the batch driver (`fcc-driver`) compiles members on many
//! threads and merges results **in module order**, which is what makes
//! `fcc --jobs N` byte-deterministic regardless of scheduling.
//!
//! The textual format is the function format repeated, separated by
//! blank lines, and round-trips through [`crate::parse::parse_module`]:
//!
//! ```text
//! function @first(1) {
//! b0:
//!     v0 = param 0
//!     return v0
//! }
//!
//! function @second(0) {
//! b0:
//!     return
//! }
//! ```

use std::fmt;

use crate::function::Function;

/// An ordered collection of named functions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Module {
    functions: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Build a module from functions, rejecting duplicate names.
    ///
    /// # Errors
    /// Returns the first duplicated function name.
    pub fn from_functions(functions: Vec<Function>) -> Result<Self, String> {
        let mut m = Module::new();
        for f in functions {
            m.push(f)?;
        }
        Ok(m)
    }

    /// Append a function; names must be unique within the module.
    ///
    /// # Errors
    /// Returns the name when a function with it already exists.
    pub fn push(&mut self, func: Function) -> Result<(), String> {
        if self.get(&func.name).is_some() {
            return Err(func.name);
        }
        self.functions.push(func);
        Ok(())
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the module holds no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// The functions in module (input) order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to the functions, preserving module order.
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// Consume the module, yielding its functions in module order.
    pub fn into_functions(self) -> Vec<Function> {
        self.functions
    }

    /// Find a function by name.
    pub fn get(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Iterate over the functions in module order.
    pub fn iter(&self) -> std::slice::Iter<'_, Function> {
        self.functions.iter()
    }
}

impl From<Function> for Module {
    fn from(func: Function) -> Self {
        Module {
            functions: vec![func],
        }
    }
}

impl<'a> IntoIterator for &'a Module {
    type Item = &'a Function;
    type IntoIter = std::slice::Iter<'a, Function>;
    fn into_iter(self) -> Self::IntoIter {
        self.functions.iter()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn func(name: &str) -> Function {
        crate::parse::parse_function(&format!("function @{name}(0) {{\nb0:\n return\n}}")).unwrap()
    }

    #[test]
    fn push_rejects_duplicate_names() {
        let mut m = Module::new();
        m.push(func("a")).unwrap();
        m.push(func("b")).unwrap();
        assert_eq!(m.push(func("a")), Err("a".to_string()));
        assert_eq!(m.len(), 2);
        assert!(m.get("b").is_some());
        assert!(m.get("c").is_none());
    }

    #[test]
    fn display_roundtrips_through_parse_module() {
        let m = Module::from_functions(vec![func("one"), func("two"), func("three")]).unwrap();
        let printed = m.to_string();
        let reparsed = parse_module(&printed).unwrap();
        assert_eq!(printed, reparsed.to_string());
        let names: Vec<&str> = reparsed.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["one", "two", "three"]);
    }

    #[test]
    fn single_function_module_prints_like_the_function() {
        let f = func("solo");
        let text = f.to_string();
        let m = Module::from(f);
        assert_eq!(m.to_string(), text);
    }
}
