//! The unified diagnostic model shared by every checker in the
//! workspace.
//!
//! A [`Diagnostic`] names the rule that fired, a severity, the location
//! (block / instruction / value, each optional), and a human-readable
//! message. The structural verifier ([`crate::verify`]), the SSA
//! verifier (`fcc-ssa`), and the lint framework (`fcc-lint`) all produce
//! this one type, so tooling renders and filters them uniformly — as
//! plain text (with the offending instruction printed via
//! [`crate::print`]) or as JSON for machine consumption.

use std::fmt;

use crate::function::{Block, Function, Inst, Value};

/// How bad a [`Diagnostic`] is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational observation (e.g. a parallel-copy cycle that will
    /// cost a temporary). Never fails a check.
    Note,
    /// Suspicious but not invariant-breaking (dead φ, unsplit critical
    /// edge in pre-destruction code).
    Warning,
    /// A broken invariant: the function must not proceed down the
    /// pipeline.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of a verifier or lint rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable identifier of the rule that fired (e.g. `"ssa-dominance"`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// The block the finding is anchored to, if block-local.
    pub block: Option<Block>,
    /// The instruction the finding is anchored to, if any.
    pub inst: Option<Inst>,
    /// The value the finding concerns, if any.
    pub value: Option<Value>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// A new error-severity diagnostic.
    pub fn error(rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            block: None,
            inst: None,
            value: None,
            message: message.into(),
        }
    }

    /// A new warning-severity diagnostic.
    pub fn warning(rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(rule, message)
        }
    }

    /// A new note-severity diagnostic.
    pub fn note(rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(rule, message)
        }
    }

    /// Anchor to a block.
    pub fn in_block(mut self, b: impl Into<Option<Block>>) -> Self {
        self.block = b.into();
        self
    }

    /// Anchor to an instruction.
    pub fn at_inst(mut self, i: impl Into<Option<Inst>>) -> Self {
        self.inst = i.into();
        self
    }

    /// Anchor to a value.
    pub fn on_value(mut self, v: impl Into<Option<Value>>) -> Self {
        self.value = v.into();
        self
    }

    /// Whether this diagnostic fails a check.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Render with the offending instruction quoted from `func` — the
    /// context line tools print under the headline.
    pub fn render(&self, func: &Function) -> String {
        let mut s = self.to_string();
        if let Some(inst) = self.inst {
            s.push_str(&format!("\n  --> {inst}: {}", func.display_inst(inst)));
        }
        s
    }

    /// Serialise as one JSON object (no external dependencies; the
    /// schema is `{rule, severity, block?, inst?, value?, message,
    /// context?}`).
    pub fn to_json(&self, func: Option<&Function>) -> String {
        let mut fields = vec![
            format!("\"rule\":\"{}\"", json_escape(self.rule)),
            format!("\"severity\":\"{}\"", self.severity),
        ];
        if let Some(b) = self.block {
            fields.push(format!("\"block\":\"{b}\""));
        }
        if let Some(i) = self.inst {
            fields.push(format!("\"inst\":\"{i}\""));
            if let Some(f) = func {
                fields.push(format!(
                    "\"context\":\"{}\"",
                    json_escape(&f.display_inst(i).to_string())
                ));
            }
        }
        if let Some(v) = self.value {
            fields.push(format!("\"value\":\"{v}\""));
        }
        fields.push(format!("\"message\":\"{}\"", json_escape(&self.message)));
        format!("{{{}}}", fields.join(","))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(b) = self.block {
            write!(f, " in {b}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Escape `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstKind;

    #[test]
    fn display_carries_rule_and_block() {
        let mut f = Function::new("d");
        let b0 = f.add_block();
        let d = Diagnostic::error("ssa-dominance", "bad use").in_block(b0);
        assert_eq!(d.to_string(), "error[ssa-dominance] in b0: bad use");
        assert!(d.is_error());
        let _ = &f;
    }

    #[test]
    fn render_quotes_the_instruction() {
        let mut f = Function::new("r");
        let b0 = f.add_block();
        let v = f.new_value();
        let i = f.append_inst(b0, InstKind::Const { imm: 7 }, Some(v));
        let d = Diagnostic::warning("phi-pruning", "dead")
            .in_block(b0)
            .at_inst(i);
        let r = d.render(&f);
        assert!(r.contains("const 7"), "{r}");
    }

    #[test]
    fn json_is_escaped_and_complete() {
        let d = Diagnostic::error("structure", "say \"hi\"\nplease");
        let j = d.to_json(None);
        assert_eq!(
            j,
            "{\"rule\":\"structure\",\"severity\":\"error\",\"message\":\"say \\\"hi\\\"\\nplease\"}"
        );
    }

    #[test]
    fn severity_orders_note_warning_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
