//! Pretty-printing of functions in the textual IR format.
//!
//! The format round-trips through [`crate::parse::parse_function`]:
//!
//! ```text
//! function @count(1) {
//! b0:
//!     v0 = param 0
//!     v1 = const 0
//!     jump b1
//! b1:
//!     v2 = phi [b0: v1], [b1: v3]
//!     v3 = add v2, v0
//!     v4 = lt v3, v0
//!     branch v4, b1, b2
//! b2:
//!     return v3
//! }
//! ```

use std::fmt;

use crate::function::{Function, Inst};
use crate::instr::InstKind;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "function @{}({}) {{", self.name, self.num_params)?;
        for block in self.blocks() {
            writeln!(f, "{block}:")?;
            for &inst in self.block_insts(block) {
                writeln!(f, "    {}", self.display_inst(inst))?;
            }
        }
        write!(f, "}}")
    }
}

impl Function {
    /// A displayable wrapper for one instruction.
    pub fn display_inst(&self, inst: Inst) -> DisplayInst<'_> {
        DisplayInst { func: self, inst }
    }
}

/// Displays a single instruction in the textual format.
pub struct DisplayInst<'a> {
    func: &'a Function,
    inst: Inst,
}

impl fmt::Display for DisplayInst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.func.inst(self.inst);
        if let Some(d) = data.dst {
            write!(f, "{d} = ")?;
        }
        match &data.kind {
            InstKind::Param { index } => write!(f, "param {index}"),
            InstKind::Const { imm } => write!(f, "const {imm}"),
            InstKind::Copy { src } => write!(f, "copy {src}"),
            InstKind::Unary { op, a } => write!(f, "{} {a}", op.mnemonic()),
            InstKind::Binary { op, a, b } => write!(f, "{} {a}, {b}", op.mnemonic()),
            InstKind::Load { addr } => write!(f, "load {addr}"),
            InstKind::Store { addr, val } => write!(f, "store {addr}, {val}"),
            InstKind::Spill { slot, val } => write!(f, "spill {slot}, {val}"),
            InstKind::Reload { slot } => write!(f, "reload {slot}"),
            InstKind::Phi { args } => {
                write!(f, "phi")?;
                for (i, a) in args.iter().enumerate() {
                    if i == 0 {
                        write!(f, " ")?;
                    } else {
                        write!(f, ", ")?;
                    }
                    write!(f, "[{}: {}]", a.pred, a.value)?;
                }
                Ok(())
            }
            InstKind::Branch {
                cond,
                then_dst,
                else_dst,
            } => {
                write!(f, "branch {cond}, {then_dst}, {else_dst}")
            }
            InstKind::Jump { dst } => write!(f, "jump {dst}"),
            InstKind::Return { val } => match val {
                Some(v) => write!(f, "return {v}"),
                None => write!(f, "return"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::instr::{BinOp, PhiArg, UnaryOp};

    #[test]
    fn prints_every_instruction_kind() {
        let mut b = FunctionBuilder::new("all", 1);
        let e = b.create_block();
        let x = b.create_block();
        b.switch_to(e);
        let p = b.param(0);
        let c = b.iconst(-7);
        let cp = b.copy(p);
        let n = b.unary(UnaryOp::Neg, cp);
        let s = b.binary(BinOp::Add, n, c);
        let l = b.load(s);
        b.store(s, l);
        b.branch(l, x, x);
        b.switch_to(x);
        let ph = b.new_value();
        b.ret(Some(ph));
        b.phi_in(x, vec![PhiArg { pred: e, value: s }], ph);
        let f = b.finish();
        let text = f.to_string();
        for needle in [
            "function @all(1) {",
            "v0 = param 0",
            "v1 = const -7",
            "v2 = copy v0",
            "v3 = neg v2",
            "v4 = add v3, v1",
            "v5 = load v4",
            "store v4, v5",
            "branch v5, b1, b1",
            "v6 = phi [b0: v4]",
            "return v6",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn prints_bare_return() {
        let mut b = FunctionBuilder::new("bare", 0);
        let e = b.create_block();
        b.switch_to(e);
        b.ret(None);
        let text = b.finish().to_string();
        assert!(text.contains("    return\n"), "{text}");
    }
}
