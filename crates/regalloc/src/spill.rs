//! SSA-level spilling: lower MaxLive to ≤ k before destruction.
//!
//! Under strict SSA the interference graph is chordal and MaxLive equals
//! the chromatic number, so "will k registers suffice?" is decided by
//! pressure alone. This module *changes the answer*: it rewrites a
//! strict-SSA function so that its MaxLive drops to (at most) k, by
//! storing selected values to spill slots right after their definition
//! and reloading them into **fresh SSA names** immediately before each
//! use. Fresh names keep the program strict SSA — every reload is a new
//! definition dominating its single adjacent use — so chordality (and
//! with it the MaxLive = χ certificate) survives spilling.
//!
//! Two strategies, mirroring "On the Complexity of Spill Everywhere under
//! SSA Form":
//!
//! * [`SpillStrategy::Everywhere`] — the classic baseline: at every
//!   over-pressure point, spill *all* eligible live values.
//! * [`SpillStrategy::CostGuided`] — walk the over-pressure points
//!   (worst first) and evict only `pressure − k` victims per point,
//!   chosen by minimal loop-depth-weighted [`SpillCosts`]. The greedy
//!   walk is not monotone: at very tight k its reload temporaries can
//!   recreate pressure and force extra rounds, ending up pricier than
//!   the baseline. Cost-guided therefore runs as a portfolio — it also
//!   prices the everywhere plan and keeps whichever rewrite has the
//!   lower loop-weighted spill traffic, so by construction it is never
//!   worse than the baseline on the metric it optimises.
//!
//! Spilling is best-effort: some pressure is irreducible at the SSA
//! level (φ-destinations are defined in parallel and reload temporaries
//! must live *somewhere*), so [`SpillStats::maxlive_after`] can stay
//! above k on extreme inputs. The colourer's own iterated spilling
//! (post-destruction, where φs have become sequenced copies) closes the
//! remaining gap; `audit_allocation` certifies the final result either
//! way.

use std::collections::HashMap;

use fcc_analysis::liveness::Liveness;
use fcc_analysis::loops::LoopNesting;
use fcc_analysis::pressure::{for_each_point, Point};
use fcc_analysis::DomTree;
use fcc_ir::{Block, ControlFlowGraph, Function, Inst, InstKind, Value};
use fcc_pressure::SpillCosts;

/// Victim-selection policy for [`spill_to_k`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpillStrategy {
    /// Spill every eligible value live at any over-pressure point.
    Everywhere,
    /// Spill only enough victims per point, cheapest (by loop-depth
    /// weighted cost) first.
    CostGuided,
}

impl SpillStrategy {
    /// Stable lowercase label for tables and stat lines.
    pub fn label(self) -> &'static str {
        match self {
            SpillStrategy::Everywhere => "everywhere",
            SpillStrategy::CostGuided => "cost-guided",
        }
    }
}

/// What one [`spill_to_k`] run did to the function.
#[derive(Clone, Debug, Default)]
pub struct SpillStats {
    /// Values evicted to slots, in ascending index order.
    pub spilled: Vec<Value>,
    /// `spill` instructions inserted (one per spilled value).
    pub spills: usize,
    /// `reload` instructions inserted.
    pub reloads: usize,
    /// Spill slots allocated by this run (one per spilled value).
    pub slots: u32,
    /// MaxLive on entry.
    pub maxlive_before: u32,
    /// MaxLive after rewriting. Usually ≤ k; can exceed k when pressure
    /// is irreducible at the SSA level (see module docs).
    pub maxlive_after: u32,
    /// Rewrite rounds executed.
    pub rounds: usize,
}

/// Maximum spill/recompute rounds before declaring the residual pressure
/// irreducible. Each round spills at least one new value, so this bounds
/// pathological cases only.
const MAX_ROUNDS: usize = 64;

/// Rewrite strict-SSA `func` so MaxLive drops to ≤ `k` where possible.
///
/// The input must verify as strict SSA (φs present are fine); the output
/// does too. Slot numbering continues from [`Function::spill_slot_count`],
/// so repeated spilling (e.g. the allocator's residual pass) never reuses
/// a slot.
///
/// # Panics
/// Panics if `k == 0`.
pub fn spill_to_k(func: &mut Function, k: u32, strategy: SpillStrategy) -> SpillStats {
    assert!(k > 0, "cannot spill to zero registers");
    match strategy {
        SpillStrategy::Everywhere => spill_once(func, k, strategy),
        SpillStrategy::CostGuided => {
            let mut cg = func.clone();
            let cg_stats = spill_once(&mut cg, k, SpillStrategy::CostGuided);
            if cg_stats.spills == 0 {
                *func = cg;
                return cg_stats;
            }
            // Portfolio step: price the baseline plan too and keep the
            // cheaper rewrite. Meeting the pressure target outranks
            // traffic; ties keep the cost-guided plan.
            let mut ev = func.clone();
            let ev_stats = spill_once(&mut ev, k, SpillStrategy::Everywhere);
            let cg_key = (cg_stats.maxlive_after > k, weighted_spill_traffic(&cg));
            let ev_key = (ev_stats.maxlive_after > k, weighted_spill_traffic(&ev));
            if cg_key <= ev_key {
                *func = cg;
                cg_stats
            } else {
                *func = ev;
                ev_stats
            }
        }
    }
}

/// Loop-weighted cost of all `spill`/`reload` instructions in `func`:
/// each contributes `10^min(depth, 6)` — the same model [`SpillCosts`]
/// prices victims with, and the metric [`SpillStrategy::CostGuided`]'s
/// portfolio guarantee is stated in: on the same input, the cost-guided
/// rewrite never exceeds the everywhere rewrite.
pub fn weighted_spill_traffic(func: &Function) -> f64 {
    let cfg = ControlFlowGraph::compute(func);
    let dt = DomTree::compute(func, &cfg);
    let loops = LoopNesting::compute(&cfg, &dt);
    let mut total = 0f64;
    for b in func.blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let w = 10f64.powi(loops.depth(b).min(6) as i32);
        for &i in func.block_insts(b) {
            if matches!(
                func.inst(i).kind,
                InstKind::Spill { .. } | InstKind::Reload { .. }
            ) {
                total += w;
            }
        }
    }
    total
}

fn spill_once(func: &mut Function, k: u32, strategy: SpillStrategy) -> SpillStats {
    let mut stats = SpillStats {
        maxlive_before: maxlive_of(func),
        ..SpillStats::default()
    };
    stats.maxlive_after = stats.maxlive_before;
    if stats.maxlive_before <= k {
        return stats;
    }

    // Loop-weighted costs for the original names. Victims are always
    // original values (reload temporaries are never re-spilled), so the
    // up-front estimate stays valid across rounds.
    let costs = {
        let cfg = ControlFlowGraph::compute(func);
        let dt = DomTree::compute(func, &cfg);
        let loops = LoopNesting::compute(&cfg, &dt);
        SpillCosts::compute(func, &cfg, &loops)
    };

    let mut next_slot = func.spill_slot_count();
    // Values that must never be chosen as victims: already spilled, or
    // minted by this pass (reload temporaries).
    let mut no_spill: Vec<bool> = vec![false; func.num_values()];
    for b in func.blocks() {
        for &i in func.block_insts(b) {
            match func.inst(i).kind {
                InstKind::Spill { val, .. } => no_spill[val.index()] = true,
                InstKind::Reload { .. } => {
                    if let Some(d) = func.inst(i).dst {
                        no_spill[d.index()] = true;
                    }
                }
                _ => {}
            }
        }
    }

    while stats.rounds < MAX_ROUNDS {
        stats.rounds += 1;
        let victims = select_victims(func, k, strategy, &costs, &no_spill);
        if victims.is_empty() {
            break; // converged, or residual pressure is irreducible
        }
        for &v in &victims {
            let slot = next_slot;
            next_slot += 1;
            let reloads = rewrite_value(func, v, slot);
            stats.spills += 1;
            stats.reloads += reloads;
            stats.slots += 1;
            stats.spilled.push(v);
            if v.index() < no_spill.len() {
                no_spill[v.index()] = true;
            }
        }
        // New values were minted; extend and re-mark the artefact set.
        no_spill.resize(func.num_values(), true);
        stats.maxlive_after = maxlive_of(func);
        if stats.maxlive_after <= k {
            break;
        }
    }
    stats.spilled.sort();
    stats.maxlive_after = maxlive_of(func);
    stats
}

fn maxlive_of(func: &Function) -> u32 {
    let cfg = ControlFlowGraph::compute(func);
    let live = Liveness::compute_ssa(func, &cfg);
    fcc_analysis::pressure::Pressure::compute(func, &cfg, &live).maxlive()
}

/// Pick this round's victims, in ascending value order.
fn select_victims(
    func: &Function,
    k: u32,
    strategy: SpillStrategy,
    costs: &SpillCosts,
    no_spill: &[bool],
) -> Vec<Value> {
    let cfg = ControlFlowGraph::compute(func);
    let live = Liveness::compute_ssa(func, &cfg);

    // A victim must actually lose its range when spilled: values whose
    // presence at a point is pinned by an adjacent use stay ineligible
    // *at that point*. `use_count` additionally drops never-used values
    // (spilling a dead def only lengthens its range).
    let mut use_count = vec![0usize; func.num_values()];
    for b in func.blocks() {
        for &i in func.block_insts(b) {
            let data = func.inst(i);
            data.kind.for_each_use(|u| use_count[u.index()] += 1);
            if let InstKind::Phi { args } = &data.kind {
                for a in args {
                    use_count[a.value.index()] += 1;
                }
            }
        }
    }
    // φ-arguments on the edge out of each block are live at that block's
    // Exit even after spilling (the reload temp takes their place), so
    // they are pinned at the Exit point.
    let mut exit_pinned: HashMap<Block, Vec<usize>> = HashMap::new();
    for b in func.blocks() {
        for &i in func.block_insts(b) {
            if let InstKind::Phi { args } = &func.inst(i).kind {
                for a in args {
                    exit_pinned.entry(a.pred).or_default().push(a.value.index());
                }
            }
        }
    }

    let eligible = |v: usize, pinned: &[usize]| -> bool {
        !no_spill[v] && use_count[v] > 0 && !pinned.contains(&v)
    };

    // (excess, point order, live set) per over-pressure point.
    let mut chosen: Vec<bool> = vec![false; func.num_values()];
    let mut picks: Vec<Value> = Vec::new();
    let empty: Vec<usize> = Vec::new();
    for_each_point(func, &cfg, &live, |p, set| {
        let mut pinned: Vec<usize> = Vec::new();
        match p {
            Point::Before(_, i) | Point::DeadDef(_, i) => {
                func.inst(i).kind.for_each_use(|u| pinned.push(u.index()));
                if let Some(d) = func.inst(i).dst {
                    pinned.push(d.index());
                }
            }
            Point::Exit(b) => pinned.extend(exit_pinned.get(&b).unwrap_or(&empty)),
            Point::PhiDefs(_) => return, // φ-defs are parallel: irreducible here
        }
        // Count pressure as if already-picked victims were gone.
        let residual: Vec<usize> = set.iter().filter(|&v| !chosen[v]).collect();
        if (residual.len() as u32) <= k {
            return;
        }
        let mut cands: Vec<usize> = residual
            .iter()
            .copied()
            .filter(|&v| eligible(v, &pinned))
            .collect();
        match strategy {
            SpillStrategy::Everywhere => {
                for v in cands {
                    if !chosen[v] {
                        chosen[v] = true;
                        picks.push(Value::new(v));
                    }
                }
            }
            SpillStrategy::CostGuided => {
                let need = residual.len() - k as usize;
                cands.sort_by(|&a, &b| {
                    costs
                        .cost(Value::new(a))
                        .partial_cmp(&costs.cost(Value::new(b)))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                for &v in cands.iter().take(need) {
                    if !chosen[v] {
                        chosen[v] = true;
                        picks.push(Value::new(v));
                    }
                }
            }
        }
    });
    picks.sort();
    picks
}

/// Evict `v` to `slot`: one `spill` after its definition, one fresh-name
/// `reload` in front of every use. Returns the number of reloads.
fn rewrite_value(func: &mut Function, v: Value, slot: u32) -> usize {
    // Locate the definition site.
    let mut def: Option<(Block, Inst)> = None;
    for b in func.blocks() {
        for &i in func.block_insts(b) {
            if func.inst(i).dst == Some(v) {
                def = Some((b, i));
                break;
            }
        }
        if def.is_some() {
            break;
        }
    }
    let (def_block, def_inst) = def.expect("spill victim must have a definition");

    // Collect use sites before mutating. φ-args reload in the predecessor.
    let mut inst_uses: Vec<(Block, Inst)> = Vec::new();
    let mut phi_args: Vec<(Inst, Block)> = Vec::new(); // (φ inst, pred)
    for b in func.blocks() {
        for &i in func.block_insts(b) {
            let data = func.inst(i);
            let mut used = false;
            data.kind.for_each_use(|u| used |= u == v);
            if used {
                inst_uses.push((b, i));
            }
            if let InstKind::Phi { args } = &data.kind {
                for a in args {
                    if a.value == v {
                        phi_args.push((i, a.pred));
                    }
                }
            }
        }
    }

    // Insert the spill right after the definition. φ definitions sit in a
    // parallel group and params must stay a prefix of the entry block, so
    // the spill goes after the whole group in those cases.
    let def_pos = pos_of(func, def_block, def_inst);
    let insert_at = match &func.inst(def_inst).kind {
        InstKind::Phi { .. } => first_non_phi(func, def_block),
        InstKind::Param { .. } => first_non_param(func, def_block),
        _ => def_pos + 1,
    };
    func.insert_inst_at(def_block, insert_at, InstKind::Spill { slot, val: v }, None);

    let mut reloads = 0usize;

    // Ordinary uses: fresh temp per using instruction (a double operand
    // like `add v, v` shares the one temp).
    for (b, i) in inst_uses {
        let t = func.new_value();
        let pos = pos_of(func, b, i);
        func.insert_inst_at(b, pos, InstKind::Reload { slot }, Some(t));
        reloads += 1;
        func.inst_mut(i).kind.for_each_use_mut(|u| {
            if *u == v {
                *u = t;
            }
        });
    }

    // φ-argument uses: reload at the bottom of the predecessor, one temp
    // per (pred) edge shared across all φs consuming `v` on that edge.
    let mut edge_temp: HashMap<Block, Value> = HashMap::new();
    for (phi, pred) in phi_args {
        let t = match edge_temp.get(&pred) {
            Some(&t) => t,
            None => {
                let t = func.new_value();
                let term = func
                    .terminator(pred)
                    .expect("predecessor must have a terminator");
                let pos = pos_of(func, pred, term);
                func.insert_inst_at(pred, pos, InstKind::Reload { slot }, Some(t));
                reloads += 1;
                edge_temp.insert(pred, t);
                t
            }
        };
        if let InstKind::Phi { args } = &mut func.inst_mut(phi).kind {
            for a in args.iter_mut() {
                if a.pred == pred && a.value == v {
                    a.value = t;
                }
            }
        }
    }

    reloads
}

fn pos_of(func: &Function, b: Block, i: Inst) -> usize {
    func.block_insts(b)
        .iter()
        .position(|&x| x == i)
        .expect("instruction must be in its block")
}

fn first_non_phi(func: &Function, b: Block) -> usize {
    let insts = func.block_insts(b);
    let mut p = 0;
    while p < insts.len() && func.inst(insts[p]).kind.is_phi() {
        p += 1;
    }
    p
}

fn first_non_param(func: &Function, b: Block) -> usize {
    let insts = func.block_insts(b);
    let mut p = 0;
    while p < insts.len() && matches!(func.inst(insts[p]).kind, InstKind::Param { .. }) {
        p += 1;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;
    use fcc_ssa::verify_ssa;

    // Eight long-lived constants summed at the end: MaxLive 8, every
    // value spillable.
    const WIDE: &str = "function @wide(0) {
        b0:
            v0 = const 1
            v1 = const 2
            v2 = const 3
            v3 = const 4
            v4 = const 5
            v5 = const 6
            v6 = const 7
            v7 = const 8
            v8 = add v0, v1
            v9 = add v8, v2
            v10 = add v9, v3
            v11 = add v10, v4
            v12 = add v11, v5
            v13 = add v12, v6
            v14 = add v13, v7
            return v14
        }";

    fn check(text: &str, k: u32, strategy: SpillStrategy) -> (Function, SpillStats) {
        let mut f = parse_function(text).unwrap();
        let before = fcc_interp::run(&f, &[]).unwrap();
        let stats = spill_to_k(&mut f, k, strategy);
        verify_function(&f).unwrap();
        verify_ssa(&f).expect("spilled code must stay strict SSA");
        let after = fcc_interp::run(&f, &[]).unwrap();
        assert_eq!(before.behavior(), after.behavior(), "{f}");
        (f, stats)
    }

    #[test]
    fn lowers_maxlive_to_k() {
        for k in [4u32, 8, 16] {
            for strat in [SpillStrategy::Everywhere, SpillStrategy::CostGuided] {
                let (_, stats) = check(WIDE, k, strat);
                assert!(
                    stats.maxlive_after <= k.max(3),
                    "k={k} {strat:?}: {} -> {}",
                    stats.maxlive_before,
                    stats.maxlive_after
                );
            }
        }
    }

    #[test]
    fn cost_guided_spills_no_more_than_everywhere() {
        let (_, cg) = check(WIDE, 4, SpillStrategy::CostGuided);
        let (_, ev) = check(WIDE, 4, SpillStrategy::Everywhere);
        assert!(cg.spills <= ev.spills, "{} > {}", cg.spills, ev.spills);
        assert!(cg.reloads <= ev.reloads, "{} > {}", cg.reloads, ev.reloads);
        assert!(cg.spills > 0, "k=4 must force spilling");
    }

    #[test]
    fn noop_when_pressure_fits() {
        let (f, stats) = check(WIDE, 16, SpillStrategy::CostGuided);
        assert_eq!(stats.spills, 0);
        assert_eq!(stats.reloads, 0);
        assert_eq!(f.spill_slot_count(), 0);
    }

    #[test]
    fn phi_arguments_reload_in_the_predecessor() {
        let text = "function @loop(1) {
            b0:
                v0 = param 0
                v1 = const 10
                v2 = const 20
                v3 = const 30
                v4 = const 40
                jump b1
            b1:
                v5 = phi [b0: v1], [b1: v6]
                v7 = const 1
                v6 = sub v5, v7
                branch v6, b1, b2
            b2:
                v8 = add v2, v3
                v9 = add v8, v4
                v10 = add v9, v0
                return v10
            }";
        let mut f = parse_function(text).unwrap();
        let before = fcc_interp::run(&f, &[7]).unwrap();
        let stats = spill_to_k(&mut f, 4, SpillStrategy::CostGuided);
        verify_function(&f).unwrap();
        verify_ssa(&f).unwrap();
        let after = fcc_interp::run(&f, &[7]).unwrap();
        assert_eq!(before.behavior(), after.behavior(), "{f}");
        assert!(stats.spills > 0);
        assert!(stats.maxlive_after <= 4, "{}", stats.maxlive_after);
    }

    #[test]
    fn loop_resident_values_cost_more_and_stay() {
        // v1 is hammered inside the loop; v2..v4 idle across it. The
        // cost-guided spiller must evict the idle values, not v1.
        let text = "function @hot(1) {
            b0:
                v0 = param 0
                v1 = const 1
                v2 = const 100
                v3 = const 200
                v4 = const 300
                v12 = const 0
                jump b1
            b1:
                v5 = phi [b0: v0], [b1: v6]
                v13 = phi [b0: v12], [b1: v14]
                v6 = sub v5, v1
                v14 = add v13, v1
                branch v6, b1, b2
            b2:
                v8 = add v2, v3
                v9 = add v8, v4
                v10 = add v9, v14
                return v10
            }";
        let mut f = parse_function(text).unwrap();
        let stats = spill_to_k(&mut f, 4, SpillStrategy::CostGuided);
        assert!(
            !stats.spilled.contains(&Value::new(1)),
            "v1 is loop-resident and must not be the victim: {:?}",
            stats.spilled
        );
    }

    #[test]
    fn slot_numbering_continues_past_existing_slots() {
        let text = "function @pre(0) {
            b0:
                v0 = const 1
                spill 2, v0
                v1 = reload 2
                v2 = const 3
                v3 = const 4
                v4 = const 5
                v5 = const 6
                v6 = add v1, v2
                v7 = add v6, v3
                v8 = add v7, v4
                v9 = add v8, v5
                return v9
            }";
        let mut f = parse_function(text).unwrap();
        let stats = spill_to_k(&mut f, 3, SpillStrategy::CostGuided);
        if stats.spills > 0 {
            assert!(f.spill_slot_count() > 3, "fresh slots start after slot 2");
        }
    }
}
