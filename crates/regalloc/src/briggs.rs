//! The classical interference-graph copy coalescer (Briggs) and the
//! paper's improved variant (Briggs\*).
//!
//! Section 4.1 of the paper: the Chaitin/Briggs build/coalesce loop
//! repeatedly (1) builds the interference graph, (2) coalesces every copy
//! whose source and destination do not interfere — innermost loops first —
//! merging adjacency as it goes, and (3) rewrites the code; it stops when
//! a pass coalesces nothing. The flaw the paper identifies: the graph is
//! rebuilt over the **full** live-range namespace every pass, although
//! only names involved in copies can ever be queried. **Briggs\*** builds
//! each pass's graph over just the copy-related names through a compact
//! mapping array — same results, a fraction of the memory and time
//! (Table 1).

use std::time::{Duration, Instant};

use fcc_analysis::{AnalysisManager, UnionFind};
use fcc_ir::{Block, Function, Inst, InstKind, Value};

use crate::igraph::InterferenceGraph;

/// Which graph layout the coalescer builds each pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GraphMode {
    /// Full namespace — the original Briggs formulation.
    #[default]
    Full,
    /// Copy-related names only (the paper's Briggs\* improvement).
    Restricted,
}

/// Options for [`coalesce_copies`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BriggsOptions {
    /// Full (Briggs) or restricted (Briggs\*) graph construction.
    pub mode: GraphMode,
    /// Safety bound on build/coalesce iterations.
    pub max_passes: usize,
}

impl Default for BriggsOptions {
    fn default() -> Self {
        BriggsOptions {
            mode: GraphMode::Full,
            max_passes: 64,
        }
    }
}

/// Per-pass measurements (Table 1 reports the first two passes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PassStats {
    /// Copies coalesced in this pass.
    pub coalesced: usize,
    /// Interference-graph nodes this pass.
    pub graph_dim: usize,
    /// Bytes of the bit matrix this pass.
    pub matrix_bytes: usize,
    /// Total graph bytes (matrix + adjacency + mapping).
    pub graph_bytes: usize,
    /// Wall-clock time of the pass (build + coalesce + rewrite).
    pub time: Duration,
}

/// Aggregate results of a coalescing run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BriggsStats {
    /// One entry per build/coalesce pass (the final, no-op pass included).
    pub passes: Vec<PassStats>,
    /// Copy instructions deleted.
    pub copies_removed: usize,
    /// Copy instructions remaining afterwards.
    pub copies_remaining: usize,
    /// Peak bytes across passes (graph + liveness), the Table 3 metric.
    pub peak_bytes: usize,
}

impl BriggsStats {
    /// Total wall-clock time across passes.
    pub fn total_time(&self) -> Duration {
        self.passes.iter().map(|p| p.time).sum()
    }

    /// Peak bit-matrix bytes across passes — the paper's Table 1 memory
    /// number.
    pub fn peak_matrix_bytes(&self) -> usize {
        self.passes
            .iter()
            .map(|p| p.matrix_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Coalesce the copy instructions of the φ-free function `func` with the
/// iterated build/coalesce loop. Returns per-pass statistics.
///
/// # Panics
/// Panics if `func` contains φ-nodes (destruct first, e.g. with
/// [`crate::webs::destruct_via_webs`]).
pub fn coalesce_copies(func: &mut Function, opts: &BriggsOptions) -> BriggsStats {
    coalesce_copies_managed(func, opts, &mut AnalysisManager::new())
}

/// [`coalesce_copies`], pulling the per-pass analyses from a shared
/// [`AnalysisManager`]. The first pass hits the cache when the caller's
/// pipeline already analysed the unmodified function; later passes
/// recompute because each rewrite bumps the epoch — exactly the repeated
/// re-analysis cost the paper charges against the Briggs loop.
pub fn coalesce_copies_managed(
    func: &mut Function,
    opts: &BriggsOptions,
    am: &mut AnalysisManager,
) -> BriggsStats {
    assert!(!func.has_phis(), "coalesce_copies expects phi-free code");
    let mut stats = BriggsStats::default();

    for _pass in 0..opts.max_passes {
        let t0 = Instant::now();
        let cfg = am.cfg(func);
        let live = am.liveness(func);
        let loops = am.loops(func);

        // Collect copies with their loop depth.
        let mut copies: Vec<(Block, Inst, Value, Value, u32)> = Vec::new();
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &inst in func.block_insts(b) {
                if let InstKind::Copy { src } = func.inst(inst).kind {
                    let dst = func.inst(inst).dst.expect("copy defines");
                    copies.push((b, inst, dst, src, loops.depth(b)));
                }
            }
        }
        if copies.is_empty() {
            break;
        }

        let restrict: Option<Vec<Value>> = match opts.mode {
            GraphMode::Full => None,
            GraphMode::Restricted => {
                // The Briggs* mapping array: only names touched by copies
                // become graph nodes.
                let mut vals = Vec::with_capacity(copies.len() * 2);
                for &(_, _, d, s, _) in &copies {
                    vals.push(d);
                    vals.push(s);
                }
                Some(vals)
            }
        };
        let mut ig = InterferenceGraph::build(func, &cfg, &live, restrict.as_deref());

        // Coalesce, innermost loops first (the heuristic the paper notes
        // "sometimes fails ... but also sometimes wins").
        copies.sort_by_key(|c| std::cmp::Reverse(c.4));
        let mut uf = UnionFind::new(func.num_values());
        let mut coalesced = 0usize;
        for &(_, _, dst, src, _) in &copies {
            let x = Value::new(uf.find(dst.index()));
            let y = Value::new(uf.find(src.index()));
            if x == y {
                continue;
            }
            if !ig.interferes(x, y) {
                let rep = Value::new(uf.union(x.index(), y.index()));
                let loser = if rep == x { y } else { x };
                ig.merge_into(rep, loser);
                coalesced += 1;
            }
        }

        let pass_bytes = ig.bytes() + live.bytes();
        stats.peak_bytes = stats.peak_bytes.max(pass_bytes);
        stats.passes.push(PassStats {
            coalesced,
            graph_dim: ig.dim(),
            matrix_bytes: ig.matrix_bytes(),
            graph_bytes: ig.bytes(),
            time: t0.elapsed(),
        });

        if coalesced == 0 {
            break;
        }

        // Rewrite into the coalesced namespace and delete self-copies.
        let blocks: Vec<Block> = func.blocks().collect();
        for b in &blocks {
            let insts: Vec<Inst> = func.block_insts(*b).to_vec();
            for inst in insts {
                let data = func.inst_mut(inst);
                if let Some(d) = data.dst {
                    data.dst = Some(Value::new(uf.find_immutable(d.index())));
                }
                data.kind
                    .for_each_use_mut(|v| *v = Value::new(uf.find_immutable(v.index())));
            }
        }
        for b in &blocks {
            let mut removed_here = 0usize;
            func.retain_insts(*b, |_, data| {
                let drop = matches!(data.kind, InstKind::Copy { src } if data.dst == Some(src));
                if drop {
                    removed_here += 1;
                }
                !drop
            });
            stats.copies_removed += removed_here;
        }
    }

    stats.copies_remaining = func.static_copy_count();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::webs::destruct_via_webs;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;
    use fcc_ssa::{build_ssa, SsaFlavor};

    /// Pipeline used by the paper's Briggs comparator: SSA without copy
    /// folding, φ-web live ranges, then iterated coalescing.
    fn briggs_pipeline(src: &str, mode: GraphMode) -> (Function, BriggsStats) {
        let mut f = parse_function(src).unwrap();
        build_ssa(&mut f, SsaFlavor::Pruned, false);
        destruct_via_webs(&mut f);
        let stats = coalesce_copies(
            &mut f,
            &BriggsOptions {
                mode,
                ..Default::default()
            },
        );
        verify_function(&f).unwrap();
        (f, stats)
    }

    const SUM: &str = "
        function @sum(1) {
        b0:
            v0 = param 0
            v1 = const 0
            v2 = const 0
            jump b1
        b1:
            v3 = lt v2, v0
            branch v3, b2, b3
        b2:
            v4 = copy v1
            v1 = add v4, v2
            v5 = const 1
            v2 = add v2, v5
            jump b1
        b3:
            return v1
        }";

    #[test]
    fn coalesces_removable_copy() {
        let (f, stats) = briggs_pipeline(SUM, GraphMode::Full);
        // v4 = copy v1 is removable: v4's range ends where v1 is redefined.
        assert_eq!(stats.copies_removed, 1);
        assert_eq!(f.static_copy_count(), 0);
        let out = fcc_interp::run(&f, &[6]).unwrap();
        assert_eq!(out.ret, Some(15));
    }

    #[test]
    fn briggs_star_identical_results() {
        let (ff, fs) = briggs_pipeline(SUM, GraphMode::Full);
        let (rf, rs) = briggs_pipeline(SUM, GraphMode::Restricted);
        assert_eq!(fs.copies_removed, rs.copies_removed);
        assert_eq!(fs.copies_remaining, rs.copies_remaining);
        assert_eq!(ff.static_copy_count(), rf.static_copy_count());
        // And the restricted graph is no larger.
        assert!(rs.peak_matrix_bytes() <= fs.peak_matrix_bytes());
    }

    #[test]
    fn copy_of_still_live_same_value_coalesces() {
        // v1 stays live after the copy, but v1 and v2 always hold the same
        // value — Chaitin's copy rule records no edge, the pair coalesces,
        // and semantics are preserved. This is the rule working as
        // designed, not a missed interference.
        let src = "
            function @samev(1) {
            b0:
                v0 = param 0
                v1 = const 3
                v2 = copy v1
                v3 = add v2, v0
                v4 = mul v3, v1
                v5 = add v4, v2
                return v5
            }";
        let mut f = parse_function(src).unwrap();
        let reference = fcc_interp::run(&f, &[4]).unwrap();
        let stats = coalesce_copies(&mut f, &BriggsOptions::default());
        assert_eq!(stats.copies_removed, 1);
        assert_eq!(f.static_copy_count(), 0);
        let out = fcc_interp::run(&f, &[4]).unwrap();
        assert_eq!(reference.behavior(), out.behavior());
    }

    #[test]
    fn necessary_copy_is_kept() {
        // The copy source v1 is REDEFINED while the destination v2 is
        // still live: the second definition of v1 records the (v1, v2)
        // interference edge, so the copy must stay.
        let src = "
            function @keep(1) {
            b0:
                v0 = param 0
                v1 = const 3
                v2 = copy v1
                v1 = add v0, v0
                v3 = add v1, v2
                return v3
            }";
        let mut f = parse_function(src).unwrap();
        let reference = fcc_interp::run(&f, &[4]).unwrap();
        let stats = coalesce_copies(&mut f, &BriggsOptions::default());
        assert_eq!(stats.copies_removed, 0);
        assert_eq!(f.static_copy_count(), 1);
        let out = fcc_interp::run(&f, &[4]).unwrap();
        assert_eq!(reference.behavior(), out.behavior());
        assert_eq!(out.ret, Some(11));
    }

    #[test]
    fn copy_chains_collapse_via_union_find() {
        // chain: v1 -> v2 -> v3. Union-find chaining lets one pass
        // coalesce both copies (find(v2) already points at v1's set when
        // the second copy is examined).
        let src = "
            function @chain(1) {
            b0:
                v0 = param 0
                v1 = add v0, v0
                v2 = copy v1
                v3 = copy v2
                v4 = add v3, v0
                return v4
            }";
        let mut f = parse_function(src).unwrap();
        let reference = fcc_interp::run(&f, &[5]).unwrap();
        let stats = coalesce_copies(&mut f, &BriggsOptions::default());
        assert_eq!(stats.copies_removed, 2);
        assert_eq!(f.static_copy_count(), 0);
        assert_eq!(stats.passes[0].coalesced, 2);
        let out = fcc_interp::run(&f, &[5]).unwrap();
        assert_eq!(reference.behavior(), out.behavior());
    }

    #[test]
    fn restricted_graph_is_much_smaller_at_scale() {
        // Many values, few copies: the Briggs* matrix should be tiny.
        let mut body = String::from("function @wide(1) {\nb0:\n v0 = param 0\n");
        let n = 200;
        for i in 1..=n {
            body.push_str(&format!(" v{i} = add v0, v0\n"));
        }
        body.push_str(&format!(" v{} = copy v{}\n", n + 1, n));
        body.push_str(&format!(" return v{}\n}}\n", n + 1));
        let mut f_full = parse_function(&body).unwrap();
        let mut f_star = f_full.clone();
        let fs = coalesce_copies(
            &mut f_full,
            &BriggsOptions {
                mode: GraphMode::Full,
                ..Default::default()
            },
        );
        let rs = coalesce_copies(
            &mut f_star,
            &BriggsOptions {
                mode: GraphMode::Restricted,
                ..Default::default()
            },
        );
        assert_eq!(fs.copies_removed, rs.copies_removed);
        assert!(
            rs.peak_matrix_bytes() * 100 < fs.peak_matrix_bytes(),
            "restricted {} vs full {}",
            rs.peak_matrix_bytes(),
            fs.peak_matrix_bytes()
        );
    }

    #[test]
    fn loop_depth_orders_coalescing() {
        // Two copies of the same source where only one can be coalesced;
        // the one in the loop must win under the innermost-first rule.
        let src = "
            function @depth(1) {
            b0:
                v0 = param 0
                v1 = const 7
                v6 = copy v1
                v7 = const 0
                jump b1
            b1:
                v2 = copy v1
                v8 = add v7, v2
                v7 = copy v8
                v3 = lt v7, v0
                branch v3, b1, b2
            b2:
                v5 = add v6, v7
                return v5
            }";
        let mut f = parse_function(src).unwrap();
        let reference = fcc_interp::run(&f, &[20]).unwrap();
        coalesce_copies(&mut f, &BriggsOptions::default());
        let out = fcc_interp::run(&f, &[20]).unwrap();
        assert_eq!(reference.behavior(), out.behavior());
        // The loop-resident copy v2 = copy v1 must be gone.
        let printed = f.to_string();
        let b1_section = printed
            .split("b1:")
            .nth(1)
            .unwrap()
            .split("b2:")
            .next()
            .unwrap();
        assert!(
            !b1_section.contains("copy v1"),
            "innermost copy should be coalesced:\n{printed}"
        );
    }
}
