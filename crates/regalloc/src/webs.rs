//! Live-range identification by φ-web unioning (Chaitin/Briggs step 2).
//!
//! The classical register-allocator pipeline the paper compares against
//! (Section 4.1) starts from SSA built **without** copy folding: every φ
//! then joins versions of a single source variable, and those versions
//! never interfere — so the webs can be renamed to one name apiece with
//! *no* copy insertion. The program keeps all of its original copy
//! instructions; coalescing them is the job of
//! [`crate::briggs`].

use fcc_analysis::UnionFind;
use fcc_ir::{Function, Inst, InstKind, Value};
use fcc_ssa::trace::DestructionTrace;

/// Counters from φ-web destruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WebStats {
    /// φ-nodes removed.
    pub phis_removed: usize,
    /// Multi-member webs found.
    pub webs: usize,
    /// Values folded into a web name.
    pub members_renamed: usize,
}

/// Union every φ destination with its arguments and rewrite the function
/// into the web namespace, deleting the φs.
///
/// This is live-range identification exactly as a Chaitin/Briggs
/// allocator performs it. It is **only sound on SSA built without copy
/// folding** (each web then corresponds to one source variable, and its
/// members cannot interfere); for folded SSA use
/// `fcc_core::coalesce_ssa`, which breaks interfering webs apart.
pub fn destruct_via_webs(func: &mut Function) -> WebStats {
    destruct_via_webs_impl(func, false).0
}

/// [`destruct_via_webs`], additionally returning the
/// [`DestructionTrace`] (snapshot, web class map, and an empty
/// `Waiting` array — web unioning inserts no copies) for the
/// `fcc-lint` soundness auditor. On SSA built *with* copy folding the
/// audit reports the interferences that make this path unsound there —
/// the failure mode the paper's algorithm exists to avoid.
pub fn destruct_via_webs_traced(func: &mut Function) -> (WebStats, DestructionTrace) {
    let (stats, trace) = destruct_via_webs_impl(func, true);
    (stats, trace.expect("trace requested"))
}

fn destruct_via_webs_impl(
    func: &mut Function,
    want_trace: bool,
) -> (WebStats, Option<DestructionTrace>) {
    let pre = want_trace.then(|| func.clone());
    let mut stats = WebStats::default();
    let n = func.num_values();
    let mut uf = UnionFind::new(n);

    let mut phis: Vec<(fcc_ir::Block, Inst)> = Vec::new();
    for b in func.blocks() {
        for phi in func.block_phis(b) {
            let data = func.inst(phi);
            let p = data.dst.expect("phi defines");
            if let InstKind::Phi { args } = &data.kind {
                for a in args {
                    uf.union(p.index(), a.value.index());
                }
            }
            phis.push((b, phi));
        }
    }

    // Name each set after its lowest-numbered member.
    let groups = uf.groups();
    let mut name: Vec<Value> = (0..n).map(Value::new).collect();
    for g in &groups {
        if g.len() > 1 {
            stats.webs += 1;
            stats.members_renamed += g.len();
            let rep = Value::new(g[0]);
            for &m in g {
                name[m] = rep;
            }
        }
    }

    let blocks: Vec<fcc_ir::Block> = func.blocks().collect();
    for b in blocks {
        let insts: Vec<Inst> = func.block_insts(b).to_vec();
        for inst in insts {
            let data = func.inst_mut(inst);
            if let Some(d) = data.dst {
                data.dst = Some(name[d.index()]);
            }
            data.kind.for_each_use_mut(|v| *v = name[v.index()]);
        }
    }

    for (b, phi) in phis {
        func.remove_inst(b, phi);
        stats.phis_removed += 1;
    }
    let trace = pre.map(|pre| DestructionTrace {
        pre,
        class_of: name,
        waiting: Some(Vec::new()),
    });
    (stats, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;
    use fcc_ssa::{build_ssa, SsaFlavor};

    const SRC: &str = "
        function @sum(1) {
        b0:
            v0 = param 0
            v1 = const 0
            v2 = const 0
            jump b1
        b1:
            v3 = lt v2, v0
            branch v3, b2, b3
        b2:
            v4 = copy v1
            v1 = add v4, v2
            v5 = const 1
            v2 = add v2, v5
            jump b1
        b3:
            return v1
        }";

    #[test]
    fn webs_restore_copyful_cfg_code() {
        let mut f = parse_function(SRC).unwrap();
        let reference = fcc_interp::run(&f, &[6]).unwrap();
        let copies_before = f.static_copy_count();
        build_ssa(&mut f, SsaFlavor::Pruned, false);
        let stats = destruct_via_webs(&mut f);
        assert!(!f.has_phis());
        assert!(stats.webs >= 1);
        verify_function(&f).unwrap();
        // No copies inserted; the original copy is still there.
        assert_eq!(f.static_copy_count(), copies_before);
        let out = fcc_interp::run(&f, &[6]).unwrap();
        assert_eq!(reference.behavior(), out.behavior());
        assert_eq!(out.ret, Some(15));
    }

    #[test]
    fn phi_free_function_unchanged() {
        let mut f = parse_function("function @id(1) {\nb0:\n v0 = param 0\n return v0\n}").unwrap();
        let before = f.to_string();
        let stats = destruct_via_webs(&mut f);
        assert_eq!(stats.webs, 0);
        assert_eq!(before, f.to_string());
    }

    #[test]
    fn diamond_web_single_name() {
        let mut f = parse_function(
            "function @sel(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 branch v0, b1, b2
             b1:
                 v1 = const 10
                 jump b3
             b2:
                 v1 = const 20
                 jump b3
             b3:
                 return v1
             }",
        )
        .unwrap();
        let r = fcc_interp::run(&f, &[1]).unwrap();
        build_ssa(&mut f, SsaFlavor::Pruned, false);
        assert!(f.has_phis());
        destruct_via_webs(&mut f);
        let out = fcc_interp::run(&f, &[1]).unwrap();
        assert_eq!(r.behavior(), out.behavior());
        assert_eq!(out.ret, Some(10));
    }
}
