//! A Chaitin/Briggs graph-colouring register allocator.
//!
//! The paper positions its coalescer as a drop-in phase for exactly this
//! allocator (and names "a fast register-allocation algorithm that uses
//! the results presented in this paper" as future work), so the library
//! ships one: simplify/select with Briggs-style *optimistic* colouring
//! and iterated spilling.
//!
//! * **simplify** — repeatedly remove nodes of degree < K; when none
//!   remains, push the cheapest spill candidate anyway (optimism: it may
//!   still colour).
//! * **select** — pop nodes, giving each the lowest colour unused by its
//!   already-coloured neighbours; a node with no free colour becomes an
//!   actual spill.
//! * **spill** — spilled values are rewritten through dedicated spill
//!   slots (disjoint from program memory): a `spill` after each
//!   definition, a `reload` into a fresh temporary before each use. The
//!   allocator then retries on the rewritten program. Slot numbering
//!   continues past any slots an earlier SSA-level spilling pass used.
//!
//! Spill costs follow the classical `(defs + uses) · 10^depth / degree`
//! estimate.

use std::collections::{HashMap, HashSet};

use fcc_analysis::AnalysisManager;
use fcc_ir::{Block, Function, Inst, InstKind, Value};

use crate::igraph::InterferenceGraph;

/// Copy-coalescing policy inside the allocator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AllocCoalesce {
    /// Leave copies alone (coalescing was done by an earlier phase, e.g.
    /// the paper's SSA-destruction coalescer).
    #[default]
    None,
    /// Briggs-conservative coalescing: merge a copy's endpoints only when
    /// the combined node has fewer than K neighbours of significant
    /// degree (≥ K), so the merge can never turn a colourable graph
    /// uncolourable.
    Conservative,
}

/// Options for [`allocate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllocOptions {
    /// Number of machine registers (colours) available.
    pub registers: usize,
    /// Safety bound on build/spill rounds.
    pub max_rounds: usize,
    /// In-allocator copy coalescing policy.
    pub coalesce: AllocCoalesce,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            registers: 8,
            max_rounds: 16,
            coalesce: AllocCoalesce::None,
        }
    }
}

/// A successful allocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Allocation {
    /// Colour (register number) per value that occurs in the function.
    pub coloring: HashMap<Value, u32>,
    /// Values spilled to slots across all rounds.
    pub spilled: Vec<Value>,
    /// Spill slots consumed by the allocator itself (slots an earlier
    /// SSA-level spilling pass used are not counted here).
    pub spill_slots: usize,
    /// Slot index per value the allocator spilled.
    pub slot_of: HashMap<Value, u32>,
    /// Build/colour rounds performed.
    pub rounds: usize,
    /// Copies removed by in-allocator conservative coalescing.
    pub copies_coalesced: usize,
}

impl Allocation {
    /// Number of distinct registers the coloring actually uses — the
    /// figure the feasibility auditor compares against a k target.
    pub fn registers_used(&self) -> u32 {
        let mut regs: Vec<u32> = self.coloring.values().copied().collect();
        regs.sort_unstable();
        regs.dedup();
        regs.len() as u32
    }
}

/// Allocation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// Even after `max_rounds` of spilling the graph would not colour.
    DidNotConverge,
    /// Fewer than two registers requested. A binary instruction needs two
    /// operand registers at once even after maximal spilling, so K < 2
    /// can spill forever (each round's fresh temporaries re-spill),
    /// growing the program instead of converging.
    TooFewRegisters,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::DidNotConverge => write!(f, "spilling did not converge"),
            AllocError::TooFewRegisters => {
                write!(
                    f,
                    "at least 2 registers are required (a binary op needs two operands live)"
                )
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Colour the φ-free function `func` with `opts.registers` registers,
/// inserting spill code as needed. On success every value in the function
/// has a colour and no two interfering values share one (checked by
/// [`verify_coloring`] in the test suite).
///
/// # Errors
/// [`AllocError::TooFewRegisters`] if `opts.registers < 2`;
/// [`AllocError::DidNotConverge`] if `max_rounds` rounds of spilling do
/// not reach a colourable graph (with K ≥ 2 this indicates a degenerate
/// input, since spilled ranges become tiny).
///
/// # Panics
/// Panics if `func` contains φ-nodes.
pub fn allocate(func: &mut Function, opts: &AllocOptions) -> Result<Allocation, AllocError> {
    allocate_managed(func, opts, &mut AnalysisManager::new())
}

/// [`allocate`], pulling the per-round analyses from a shared
/// [`AnalysisManager`]: round one hits the cache when the caller's
/// pipeline already analysed the unmodified function; spill rewrites bump
/// the epoch, so later rounds recompute.
pub fn allocate_managed(
    func: &mut Function,
    opts: &AllocOptions,
    am: &mut AnalysisManager,
) -> Result<Allocation, AllocError> {
    assert!(!func.has_phis(), "allocate expects phi-free code");
    if opts.registers < 2 {
        return Err(AllocError::TooFewRegisters);
    }
    let mut spilled_all: Vec<Value> = Vec::new();
    let mut spill_slots = 0usize;
    let mut slot_of: HashMap<Value, u32> = HashMap::new();
    // Never reuse a slot an earlier spilling pass (or a previous round)
    // already claimed.
    let slot_base = func.spill_slot_count();
    let mut copies_coalesced = 0usize;
    // Values whose live range is already minimal — reload temporaries and
    // once-spilled originals (def → spill, reload → use). Spilling one
    // again reproduces the identical one-instruction range, so the
    // retry loop would livelock; select diverts their spills instead.
    let mut no_respill: HashSet<Value> = HashSet::new();

    if opts.coalesce == AllocCoalesce::Conservative {
        copies_coalesced = conservative_coalesce(func, opts.registers, am);
    }

    for round in 1..=opts.max_rounds {
        let cfg = am.cfg(func);
        let live = am.liveness(func);
        let loops = am.loops(func);
        let ig = InterferenceGraph::build(func, &cfg, &live, None);

        // Occurrence counts and spill costs.
        let n = func.num_values();
        let mut occurs = vec![false; n];
        let mut cost = vec![0f64; n];
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            let w = 10f64.powi(loops.depth(b).min(6) as i32);
            for &inst in func.block_insts(b) {
                let data = func.inst(inst);
                if let Some(d) = data.dst {
                    occurs[d.index()] = true;
                    cost[d.index()] += w;
                }
                data.kind.for_each_use(|u| {
                    occurs[u.index()] = true;
                    cost[u.index()] += w;
                });
            }
        }
        let nodes: Vec<Value> = (0..n)
            .map(Value::new)
            .filter(|v| occurs[v.index()])
            .collect();

        // ---- simplify ----
        let mut degree: HashMap<Value, usize> = nodes.iter().map(|&v| (v, ig.degree(v))).collect();
        let mut removed: HashMap<Value, bool> = nodes.iter().map(|&v| (v, false)).collect();
        let mut stack: Vec<(Value, bool)> = Vec::with_capacity(nodes.len()); // (value, optimistic)
        let mut remaining = nodes.len();
        while remaining > 0 {
            // Peel all trivially colourable nodes.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for &v in &nodes {
                    if !removed[&v] && degree[&v] < opts.registers {
                        removed.insert(v, true);
                        remaining -= 1;
                        stack.push((v, false));
                        for nb in ig.neighbors(v) {
                            if let Some(d) = degree.get_mut(&nb) {
                                *d = d.saturating_sub(1);
                            }
                        }
                        progressed = true;
                    }
                }
            }
            if remaining == 0 {
                break;
            }
            // Optimistic push of the cheapest spill candidate.
            let v = nodes
                .iter()
                .copied()
                .filter(|v| !removed[v])
                .min_by(|&a, &b| {
                    let ca = cost[a.index()] / (degree[&a].max(1) as f64);
                    let cb = cost[b.index()] / (degree[&b].max(1) as f64);
                    ca.partial_cmp(&cb).unwrap()
                })
                .expect("remaining > 0");
            removed.insert(v, true);
            remaining -= 1;
            stack.push((v, true));
            for nb in ig.neighbors(v) {
                if let Some(d) = degree.get_mut(&nb) {
                    *d = d.saturating_sub(1);
                }
            }
        }

        // ---- select ----
        let mut coloring: HashMap<Value, u32> = HashMap::new();
        let mut to_spill: Vec<Value> = Vec::new();
        while let Some((v, _optimistic)) = stack.pop() {
            let mut used = vec![false; opts.registers];
            for nb in ig.neighbors(v) {
                if let Some(&c) = coloring.get(&nb) {
                    used[c as usize] = true;
                }
            }
            match used.iter().position(|&u| !u) {
                Some(c) => {
                    coloring.insert(v, c as u32);
                }
                None => to_spill.push(v),
            }
        }

        if to_spill.is_empty() {
            return Ok(Allocation {
                coloring,
                spilled: spilled_all,
                spill_slots,
                slot_of,
                rounds: round,
                copies_coalesced,
            });
        }

        // A minimal-range value that failed to colour marks a point that
        // is genuinely over k; the value actually worth spilling there is
        // a live-through neighbour whose range a spill can still break.
        // Divert to the cheapest such neighbour.
        let mut chosen: HashSet<Value> = to_spill.iter().copied().collect();
        let mut final_spill: Vec<Value> = Vec::new();
        for v in to_spill {
            if !no_respill.contains(&v) {
                final_spill.push(v);
                continue;
            }
            let alt = ig
                .neighbors(v)
                .into_iter()
                .filter(|nb| !no_respill.contains(nb) && !chosen.contains(nb))
                .min_by(|&a, &b| {
                    let ca = cost[a.index()] / (ig.degree(a).max(1) as f64);
                    let cb = cost[b.index()] / (ig.degree(b).max(1) as f64);
                    ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
                });
            if let Some(a) = alt {
                chosen.insert(a);
                final_spill.push(a);
            }
        }
        if final_spill.is_empty() {
            // Nothing spillable remains around the failing points: the
            // graph is identical next round, so retrying cannot help.
            return Err(AllocError::DidNotConverge);
        }

        // ---- spill rewrite ----
        final_spill.sort();
        for v in final_spill {
            let slot = slot_base + spill_slots as u32;
            spill_slots += 1;
            spilled_all.push(v);
            slot_of.insert(v, slot);
            no_respill.insert(v);
            rewrite_spill(func, v, slot, &mut no_respill);
        }
    }
    Err(AllocError::DidNotConverge)
}

/// Briggs-conservative coalescing: iterate until no copy can be merged
/// without risking colourability. A copy `d = copy s` merges when `d` and
/// `s` do not interfere and the union of their neighbourhoods contains
/// fewer than `k` nodes of degree ≥ `k` — such a merged node is
/// guaranteed to simplify, so the merge can never cause a spill that the
/// unmerged graph would have avoided.
fn conservative_coalesce(func: &mut Function, k: usize, am: &mut AnalysisManager) -> usize {
    let mut total = 0usize;
    loop {
        let cfg = am.cfg(func);
        let live = am.liveness(func);
        let ig = InterferenceGraph::build(func, &cfg, &live, None);

        // Candidate copies under the Briggs criterion.
        let mut merged: HashMap<Value, Value> = HashMap::new();
        let mut blocks_with_merge: Vec<(Block, Inst)> = Vec::new();
        'outer: for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &inst in func.block_insts(b) {
                let InstKind::Copy { src } = func.inst(inst).kind else {
                    continue;
                };
                let dst = func.inst(inst).dst.expect("copy defines");
                if dst == src || ig.interferes(dst, src) {
                    continue;
                }
                // Combined significant-degree neighbour count.
                let mut neighbors: Vec<Value> = ig.neighbors(dst);
                for nb in ig.neighbors(src) {
                    if !neighbors.contains(&nb) {
                        neighbors.push(nb);
                    }
                }
                let significant = neighbors.iter().filter(|&&nb| ig.degree(nb) >= k).count();
                if significant < k {
                    // Merge one copy per graph build (the graph is stale
                    // after a merge), then rebuild.
                    merged.insert(dst, src);
                    blocks_with_merge.push((b, inst));
                    break 'outer;
                }
            }
        }

        if merged.is_empty() {
            return total;
        }
        total += merged.len();
        let blocks: Vec<Block> = func.blocks().collect();
        for &bb in &blocks {
            let insts: Vec<Inst> = func.block_insts(bb).to_vec();
            for inst in insts {
                let data = func.inst_mut(inst);
                if let Some(d) = data.dst {
                    if let Some(&r) = merged.get(&d) {
                        data.dst = Some(r);
                    }
                }
                data.kind.for_each_use_mut(|v| {
                    if let Some(&r) = merged.get(v) {
                        *v = r;
                    }
                });
            }
        }
        for (b, inst) in blocks_with_merge {
            func.remove_inst(b, inst);
        }
        // A duplicate of the merged copy elsewhere just became a
        // self-copy; drop those too rather than leaving dead moves.
        for &bb in &blocks {
            func.retain_insts(
                bb,
                |_, data| !matches!(data.kind, InstKind::Copy { src } if data.dst == Some(src)),
            );
        }
    }
}

/// Rewrite `v` through spill slot `slot`: a `spill` after each def, a
/// `reload` into a fresh temporary before each use. Every temporary is
/// recorded in `temps` — its range is one instruction, so a later round
/// must never choose it as a spill victim.
fn rewrite_spill(func: &mut Function, v: Value, slot: u32, temps: &mut HashSet<Value>) {
    let blocks: Vec<Block> = func.blocks().collect();
    for b in blocks {
        let insts: Vec<Inst> = func.block_insts(b).to_vec();
        for inst in insts {
            // Replace uses first: reload into a fresh temp before the inst.
            let mut uses_v = false;
            func.inst(inst).kind.for_each_use(|u| uses_v |= u == v);
            if uses_v {
                let tmp = func.new_value();
                temps.insert(tmp);
                insert_before(func, b, inst, InstKind::Reload { slot }, Some(tmp));
                func.inst_mut(inst).kind.for_each_use_mut(|u| {
                    if *u == v {
                        *u = tmp;
                    }
                });
            }
            if func.inst(inst).dst == Some(v) {
                // Save right after the definition.
                insert_after(func, b, inst, InstKind::Spill { slot, val: v }, None);
            }
        }
    }
}

fn insert_before(func: &mut Function, b: Block, before: Inst, kind: InstKind, dst: Option<Value>) {
    let pos = func
        .block_insts(b)
        .iter()
        .position(|&i| i == before)
        .expect("inst in block");
    func.insert_inst_at(b, pos, kind, dst);
}

fn insert_after(func: &mut Function, b: Block, after: Inst, kind: InstKind, dst: Option<Value>) {
    let pos = func
        .block_insts(b)
        .iter()
        .position(|&i| i == after)
        .expect("inst in block");
    func.insert_inst_at(b, pos + 1, kind, dst);
}

/// Check that `coloring` is a proper colouring of `func`'s interference
/// graph with at most `k` colours. Returns the first violation message.
///
/// # Errors
/// A human-readable description of the violated constraint.
pub fn verify_coloring(
    func: &Function,
    coloring: &HashMap<Value, u32>,
    k: usize,
) -> Result<(), String> {
    let mut am = AnalysisManager::new();
    let cfg = am.cfg(func);
    let live = am.liveness(func);
    let ig = InterferenceGraph::build(func, &cfg, &live, None);
    for (&v, &c) in coloring {
        if c as usize >= k {
            return Err(format!("{v} got colour {c} >= k={k}"));
        }
        for nb in ig.neighbors(v) {
            if let Some(&cn) = coloring.get(&nb) {
                if cn == c && nb != v {
                    return Err(format!("{v} and {nb} interfere but share colour {c}"));
                }
            }
        }
    }
    // Every value that occurs must be coloured.
    for b in func.blocks() {
        for &inst in func.block_insts(b) {
            let data = func.inst(inst);
            if let Some(d) = data.dst {
                if !coloring.contains_key(&d) {
                    return Err(format!("{d} is defined but uncoloured"));
                }
            }
            let mut missing = None;
            data.kind.for_each_use(|u| {
                if !coloring.contains_key(&u) && missing.is_none() {
                    missing = Some(u);
                }
            });
            if let Some(u) = missing {
                return Err(format!("{u} is used but uncoloured"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_interp::{run_with, RunConfig};
    use fcc_ir::parse::parse_function;

    fn alloc_config() -> RunConfig {
        RunConfig {
            memory_words: (1 << 20) + 64,
            fuel: 10_000_000,
        }
    }

    const PRESSURE: &str = "
        function @pressure(1) {
        b0:
            v0 = param 0
            v1 = add v0, v0
            v2 = add v1, v0
            v3 = add v2, v1
            v4 = add v3, v2
            v5 = add v4, v3
            v6 = add v5, v4
            v7 = add v1, v2
            v8 = add v3, v4
            v9 = add v5, v6
            v10 = add v7, v8
            v11 = add v10, v9
            v12 = add v11, v1
            return v12
        }";

    #[test]
    fn colors_without_spills_when_k_large() {
        let mut f = parse_function(PRESSURE).unwrap();
        let alloc = allocate(
            &mut f,
            &AllocOptions {
                registers: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(alloc.spilled.is_empty());
        assert_eq!(alloc.rounds, 1);
        verify_coloring(&f, &alloc.coloring, 16).unwrap();
    }

    #[test]
    fn spills_under_pressure_and_stays_correct() {
        let mut f = parse_function(PRESSURE).unwrap();
        let reference = run_with(&f, &[3], &alloc_config()).unwrap();
        let alloc = allocate(
            &mut f,
            &AllocOptions {
                registers: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!alloc.spilled.is_empty(), "k=3 must force spills");
        verify_coloring(&f, &alloc.coloring, 3).unwrap();
        let out = run_with(&f, &[3], &alloc_config()).unwrap();
        assert_eq!(
            reference.ret, out.ret,
            "spill code preserves semantics:\n{f}"
        );
    }

    #[test]
    fn loop_program_allocates() {
        let src = "
            function @loopy(1) {
            b0:
                v0 = param 0
                v1 = const 0
                v2 = const 0
                jump b1
            b1:
                v3 = lt v2, v0
                branch v3, b2, b3
            b2:
                v1 = add v1, v2
                v4 = const 1
                v2 = add v2, v4
                jump b1
            b3:
                return v1
            }";
        let f = parse_function(src).unwrap();
        let reference = run_with(&f, &[10], &alloc_config()).unwrap();
        for k in [2usize, 3, 8] {
            let mut g = f.clone();
            let alloc = allocate(
                &mut g,
                &AllocOptions {
                    registers: k,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("k={k}: {e}"));
            verify_coloring(&g, &alloc.coloring, k).unwrap();
            let out = run_with(&g, &[10], &alloc_config()).unwrap();
            assert_eq!(reference.ret, out.ret, "k={k}");
        }
    }

    #[test]
    fn conservative_coalescing_removes_safe_copies() {
        let src = "
            function @cc(1) {
            b0:
                v0 = param 0
                v1 = add v0, v0
                v2 = copy v1
                v3 = mul v2, v0
                return v3
            }";
        let mut f = parse_function(src).unwrap();
        let reference = run_with(&f, &[6], &alloc_config()).unwrap();
        let alloc = allocate(
            &mut f,
            &AllocOptions {
                registers: 8,
                coalesce: AllocCoalesce::Conservative,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(alloc.copies_coalesced, 1);
        assert_eq!(f.static_copy_count(), 0);
        verify_coloring(&f, &alloc.coloring, 8).unwrap();
        let out = run_with(&f, &[6], &alloc_config()).unwrap();
        assert_eq!(reference.ret, out.ret);
    }

    #[test]
    fn conservative_coalescing_respects_interference() {
        // src redefined while dst lives: must NOT merge.
        let src = "
            function @ni(1) {
            b0:
                v0 = param 0
                v1 = const 3
                v2 = copy v1
                v1 = add v0, v0
                v3 = add v1, v2
                return v3
            }";
        let mut f = parse_function(src).unwrap();
        let reference = run_with(&f, &[4], &alloc_config()).unwrap();
        let alloc = allocate(
            &mut f,
            &AllocOptions {
                registers: 8,
                coalesce: AllocCoalesce::Conservative,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(alloc.copies_coalesced, 0);
        assert_eq!(f.static_copy_count(), 1);
        let out = run_with(&f, &[4], &alloc_config()).unwrap();
        assert_eq!(reference.ret, out.ret);
    }

    #[test]
    fn conservative_never_increases_spills() {
        // Under tight K, coalescing must not make colouring worse (that
        // is the whole point of the Briggs criterion).
        let mut base = parse_function(PRESSURE).unwrap();
        // Add a few removable copies.
        let entry = base.entry();
        let v1 = fcc_ir::Value::new(1);
        let c = base.new_value();
        base.insert_before_terminator(entry, fcc_ir::InstKind::Copy { src: v1 }, Some(c));
        let k = 4;
        let plain = allocate(
            &mut base.clone(),
            &AllocOptions {
                registers: k,
                ..Default::default()
            },
        )
        .unwrap();
        let mut with_cc = base.clone();
        let cc = allocate(
            &mut with_cc,
            &AllocOptions {
                registers: k,
                coalesce: AllocCoalesce::Conservative,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cc.spilled.len() <= plain.spilled.len() + 1);
        verify_coloring(&with_cc, &cc.coloring, k).unwrap();
    }

    #[test]
    fn too_few_registers_is_a_clean_error() {
        let mut f = parse_function(PRESSURE).unwrap();
        for k in [0usize, 1] {
            let e = allocate(
                &mut f,
                &AllocOptions {
                    registers: k,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert_eq!(e, AllocError::TooFewRegisters, "k={k}");
        }
    }

    #[test]
    fn coloring_uses_at_most_k_colors() {
        let mut f = parse_function(PRESSURE).unwrap();
        let k = 4;
        let alloc = allocate(
            &mut f,
            &AllocOptions {
                registers: k,
                ..Default::default()
            },
        )
        .unwrap();
        let max = alloc.coloring.values().max().copied().unwrap_or(0);
        assert!((max as usize) < k);
    }
}
