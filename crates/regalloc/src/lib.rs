//! # fcc-regalloc — the classical interference-graph machinery
//!
//! Everything the paper's evaluation compares the New algorithm against,
//! plus the register allocator that consumes it:
//!
//! * [`webs::destruct_via_webs`] — live-range identification by φ-web
//!   unioning (sound on SSA built *without* copy folding);
//! * [`igraph::InterferenceGraph`] — triangular-bit-matrix interference
//!   graph with Chaitin's copy rule, in **full** or **restricted**
//!   (copy-related-names-only) layout;
//! * [`briggs::coalesce_copies`] — the iterated build/coalesce loop:
//!   [`briggs::GraphMode::Full`] is the paper's **Briggs** baseline,
//!   [`briggs::GraphMode::Restricted`] is the improved **Briggs\***
//!   (Section 4.1) with identical results and a fraction of the memory;
//! * [`color::allocate`] — a Chaitin/Briggs graph-colouring allocator
//!   with optimistic colouring and iterated spilling.
//!
//! ## Example: the Briggs* pipeline
//!
//! ```
//! use fcc_ir::parse::parse_function;
//! use fcc_ssa::{build_ssa, SsaFlavor};
//! use fcc_regalloc::{destruct_via_webs, coalesce_copies, BriggsOptions, GraphMode};
//!
//! let mut f = parse_function(
//!     "function @inc(1) {
//!      b0:
//!          v0 = param 0
//!          v1 = copy v0
//!          v2 = add v1, v1
//!          return v2
//!      }",
//! ).unwrap();
//! build_ssa(&mut f, SsaFlavor::Pruned, false);
//! destruct_via_webs(&mut f);
//! let stats = coalesce_copies(&mut f, &BriggsOptions {
//!     mode: GraphMode::Restricted,
//!     ..Default::default()
//! });
//! assert_eq!(stats.copies_removed, 1);
//! assert_eq!(f.static_copy_count(), 0);
//! ```

pub mod briggs;
pub mod color;
pub mod igraph;
pub mod spill;
pub mod webs;

pub use briggs::{
    coalesce_copies, coalesce_copies_managed, BriggsOptions, BriggsStats, GraphMode, PassStats,
};
pub use color::{
    allocate, allocate_managed, verify_coloring, AllocError, AllocOptions, Allocation,
};
pub use igraph::InterferenceGraph;
pub use spill::{spill_to_k, weighted_spill_traffic, SpillStats, SpillStrategy};
pub use webs::{destruct_via_webs, destruct_via_webs_traced, WebStats};
