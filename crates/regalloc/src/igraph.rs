//! Chaitin-style interference-graph construction.
//!
//! The triangular bit matrix plus adjacency vectors of a classical
//! graph-colouring allocator, built by the standard backward scan: at each
//! definition, the defined value interferes with everything currently
//! live; the source of a `copy` is removed from the live set first so
//! move-related values do not get a spurious edge (Chaitin's rule, which
//! is what makes copy coalescing possible at all).
//!
//! Two build modes, mirroring Section 4.1 of the paper:
//!
//! * **full** — one node per value in the function, the textbook layout
//!   whose `n²/2`-bit matrix dominates the allocator's memory;
//! * **restricted** (the Briggs\* insight) — during the build/coalesce
//!   loop, only names involved in copy instructions can ever be queried,
//!   so the matrix is built over just those names via a compact mapping
//!   array, shrinking memory by orders of magnitude with *identical*
//!   coalescing results.

use fcc_analysis::{BitSet, Liveness, TriangularBitMatrix};
use fcc_ir::{ControlFlowGraph, Function, InstKind, Value};

/// An interference graph over (a subset of) a function's values.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    matrix: TriangularBitMatrix,
    adj: Vec<Vec<u32>>,
    /// value index → compact node id (`u32::MAX` = untracked).
    map: Vec<u32>,
    /// compact node id → value index (for diagnostics).
    rev: Vec<u32>,
}

const UNTRACKED: u32 = u32::MAX;

impl InterferenceGraph {
    /// Build the interference graph of the φ-free function `func`.
    ///
    /// With `restrict_to = None` every value is a node; with
    /// `Some(values)` only the given values are tracked and all other
    /// interference pairs are discarded during the scan.
    ///
    /// # Panics
    /// Panics if `func` still contains φ-nodes.
    pub fn build(
        func: &Function,
        cfg: &ControlFlowGraph,
        live: &Liveness,
        restrict_to: Option<&[Value]>,
    ) -> Self {
        assert!(
            !func.has_phis(),
            "interference graphs are built on phi-free code"
        );
        let n = func.num_values();
        let mut map = vec![UNTRACKED; n];
        let rev: Vec<u32> = match restrict_to {
            None => {
                for (i, m) in map.iter_mut().enumerate() {
                    *m = i as u32;
                }
                (0..n as u32).collect()
            }
            Some(values) => {
                let mut rev = Vec::with_capacity(values.len());
                for &v in values {
                    if map[v.index()] == UNTRACKED {
                        map[v.index()] = rev.len() as u32;
                        rev.push(v.index() as u32);
                    }
                }
                rev
            }
        };
        let dim = rev.len();
        let mut g = InterferenceGraph {
            matrix: TriangularBitMatrix::new(dim),
            adj: vec![Vec::new(); dim],
            map,
            rev,
        };

        let mut live_set = BitSet::new(n);
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            live_set.clear();
            live_set.union_with(live.live_out(b));
            for &inst in func.block_insts(b).iter().rev() {
                let data = func.inst(inst);
                // Chaitin's copy rule: the move source does not interfere
                // with the move destination merely because of the move.
                if let InstKind::Copy { src } = data.kind {
                    live_set.remove(src.index());
                }
                if let Some(d) = data.dst {
                    let dn = g.map[d.index()];
                    if dn != UNTRACKED {
                        for z in live_set.iter() {
                            if z == d.index() {
                                continue;
                            }
                            let zn = g.map[z];
                            if zn != UNTRACKED {
                                g.add_edge_compact(dn as usize, zn as usize);
                            }
                        }
                    }
                    live_set.remove(d.index());
                }
                data.kind.for_each_use(|u| {
                    live_set.insert(u.index());
                });
            }
        }
        g
    }

    fn add_edge_compact(&mut self, a: usize, b: usize) {
        if self.matrix.add(a, b) {
            self.adj[a].push(b as u32);
            self.adj[b].push(a as u32);
        }
    }

    /// Whether `a` and `b` are tracked and interfere.
    pub fn interferes(&self, a: Value, b: Value) -> bool {
        let an = self.map[a.index()];
        let bn = self.map[b.index()];
        an != UNTRACKED && bn != UNTRACKED && self.matrix.relates(an as usize, bn as usize)
    }

    /// Whether `v` is a node of this graph.
    pub fn is_tracked(&self, v: Value) -> bool {
        v.index() < self.map.len() && self.map[v.index()] != UNTRACKED
    }

    /// Fold `loser`'s interferences into `winner` (Chaitin's adjacency
    /// merge after coalescing the pair). Both must be tracked.
    pub fn merge_into(&mut self, winner: Value, loser: Value) {
        let w = self.map[winner.index()] as usize;
        let l = self.map[loser.index()] as usize;
        assert!(w != UNTRACKED as usize && l != UNTRACKED as usize);
        let neighbors = std::mem::take(&mut self.adj[l]);
        for &z in &neighbors {
            if z as usize != w {
                self.add_edge_compact(w, z as usize);
            }
        }
        self.adj[l] = neighbors;
    }

    /// Degree of `v` (0 if untracked).
    pub fn degree(&self, v: Value) -> usize {
        let n = self.map[v.index()];
        if n == UNTRACKED {
            0
        } else {
            self.adj[n as usize].len()
        }
    }

    /// The neighbours of `v` as values.
    pub fn neighbors(&self, v: Value) -> Vec<Value> {
        let n = self.map[v.index()];
        if n == UNTRACKED {
            return Vec::new();
        }
        self.adj[n as usize]
            .iter()
            .map(|&z| Value::new(self.rev[z as usize] as usize))
            .collect()
    }

    /// Number of graph nodes (the matrix dimension) — `n` in the paper's
    /// `n²/2` memory analysis.
    pub fn dim(&self) -> usize {
        self.matrix.dim()
    }

    /// Number of interference edges.
    pub fn edge_count(&self) -> usize {
        self.matrix.count()
    }

    /// Bytes held by the bit matrix alone — the Table 1 metric.
    pub fn matrix_bytes(&self) -> usize {
        self.matrix.bytes()
    }

    /// Total bytes (matrix + adjacency vectors + mapping array).
    pub fn bytes(&self) -> usize {
        self.matrix.bytes()
            + self.adj.iter().map(|a| a.capacity() * 4).sum::<usize>()
            + self.adj.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.map.capacity() * 4
            + self.rev.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;

    fn graph(text: &str, restrict: Option<&[usize]>) -> (Function, InterferenceGraph) {
        let f = parse_function(text).unwrap();
        let cfg = ControlFlowGraph::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        let vals: Option<Vec<Value>> = restrict.map(|r| r.iter().map(|&i| Value::new(i)).collect());
        let g = InterferenceGraph::build(&f, &cfg, &live, vals.as_deref());
        (f, g)
    }

    const OVERLAP: &str = "
        function @o(0) {
        b0:
            v0 = const 1
            v1 = const 2
            v2 = add v0, v1
            v3 = add v2, v1
            return v3
        }";

    #[test]
    fn simultaneous_values_interfere() {
        let (_, g) = graph(OVERLAP, None);
        let v = Value::new;
        assert!(g.interferes(v(0), v(1)), "v0 and v1 both live at v2's def");
        assert!(g.interferes(v(2), v(1)), "v1 still live at v2's def");
        assert!(!g.interferes(v(0), v(3)), "v0 dead before v3");
        assert!(!g.interferes(v(0), v(2)), "v0 dies at v2's def");
    }

    #[test]
    fn copy_source_does_not_interfere_with_dest() {
        let (_, g) = graph(
            "function @c(0) {
             b0:
                 v0 = const 1
                 v1 = copy v0
                 v2 = add v1, v0
                 return v2
             }",
            None,
        );
        // v0 is used after the copy, so it IS live at v1's def — but the
        // Chaitin rule removes the move source before recording edges.
        // (A later use of v0 would re-add the interference via a later
        // def, but there is none here.)
        assert!(!g.interferes(Value::new(0), Value::new(1)));
    }

    #[test]
    fn copy_source_interferes_if_dest_redefined_region_overlaps() {
        let (_, g) = graph(
            "function @c2(0) {
             b0:
                 v0 = const 1
                 v1 = copy v0
                 v2 = add v1, v1
                 v3 = add v2, v0
                 return v3
             }",
            None,
        );
        // v0 live past v2's def: edge (v0, v2) exists even though (v0, v1)
        // is suppressed by the copy rule.
        assert!(g.interferes(Value::new(0), Value::new(2)));
        assert!(!g.interferes(Value::new(0), Value::new(1)));
    }

    #[test]
    fn cross_block_interference() {
        let (_, g) = graph(
            "function @x(0) {
             b0:
                 v0 = const 1
                 v1 = const 2
                 jump b1
             b1:
                 v2 = add v0, v1
                 return v2
             }",
            None,
        );
        assert!(g.interferes(Value::new(0), Value::new(1)));
    }

    #[test]
    fn restricted_graph_tracks_subset_only() {
        let (_, g) = graph(OVERLAP, Some(&[0, 1]));
        assert_eq!(g.dim(), 2);
        assert!(g.interferes(Value::new(0), Value::new(1)));
        assert!(!g.is_tracked(Value::new(2)));
        assert!(!g.interferes(Value::new(2), Value::new(1)));
    }

    #[test]
    fn restricted_matrix_is_smaller() {
        let (_, full) = graph(OVERLAP, None);
        let (_, small) = graph(OVERLAP, Some(&[0, 1]));
        assert!(small.matrix_bytes() <= full.matrix_bytes());
        assert!(small.dim() < full.dim());
    }

    #[test]
    fn merge_into_unions_adjacency() {
        let (_, mut g) = graph(OVERLAP, None);
        let v = Value::new;
        // v0–v1 interfere; v2–v1 interfere. Merge v2 into v0: v0 keeps its
        // edge to v1 and the degree grows by v2's other neighbours.
        assert!(!g.interferes(v(0), v(2)));
        g.merge_into(v(0), v(2));
        assert!(g.interferes(v(0), v(1)));
        // v3 interfered with nothing besides... check degree consistency.
        let n0: Vec<Value> = g.neighbors(v(0));
        assert!(n0.contains(&v(1)));
    }

    #[test]
    fn degree_counts_unique_neighbors() {
        let (_, g) = graph(OVERLAP, None);
        assert_eq!(g.degree(Value::new(1)), 2); // v0 and v2
        assert_eq!(g.degree(Value::new(3)), 0);
    }
}
