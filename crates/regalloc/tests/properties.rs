//! Property tests: the interference graph against a brute-force
//! point-by-point liveness model, and the Briggs/Briggs\* equivalence on
//! random programs.

use std::collections::HashSet;

use fcc_analysis::Liveness;
use fcc_ir::{Block, ControlFlowGraph, Function, InstKind, Value};
use fcc_regalloc::{
    coalesce_copies, destruct_via_webs, BriggsOptions, GraphMode, InterferenceGraph,
};
use fcc_ssa::{build_ssa, SsaFlavor};
use fcc_workloads::{generate, GenConfig};

fn lower(seed: u64, cfg: &GenConfig) -> Function {
    let prog = generate(seed, cfg);
    fcc_frontend::lower_program(&prog).expect("generated programs lower")
}

/// Brute-force interference: simulate the backward scan per block and
/// record, at every definition point, the set of simultaneously live
/// values (excluding a copy's source at the copy itself — Chaitin's
/// rule). This reimplements the graph builder with sets instead of the
/// matrix, independently.
fn brute_force_edges(func: &Function) -> HashSet<(usize, usize)> {
    let cfg = ControlFlowGraph::compute(func);
    let live = Liveness::compute(func, &cfg);
    let mut edges = HashSet::new();
    for b in func.blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut live_now: HashSet<usize> = live.live_out(b).iter().collect();
        for &inst in func.block_insts(b).iter().rev() {
            let data = func.inst(inst);
            if let InstKind::Copy { src } = data.kind {
                live_now.remove(&src.index());
            }
            if let Some(d) = data.dst {
                for &z in &live_now {
                    if z != d.index() {
                        let (a, c) = (d.index().min(z), d.index().max(z));
                        edges.insert((a, c));
                    }
                }
                live_now.remove(&d.index());
            }
            data.kind.for_each_use(|u| {
                live_now.insert(u.index());
            });
        }
    }
    edges
}

#[test]
fn igraph_matches_brute_force_on_generated_programs() {
    let gcfg = GenConfig {
        stmts: 8,
        vars: 5,
        ..Default::default()
    };
    for seed in 0..30u64 {
        let mut f = lower(seed, &gcfg);
        build_ssa(&mut f, SsaFlavor::Pruned, false);
        destruct_via_webs(&mut f);
        let cfg = ControlFlowGraph::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        let ig = InterferenceGraph::build(&f, &cfg, &live, None);
        let expect = brute_force_edges(&f);
        let n = f.num_values();
        for a in 0..n {
            for b in (a + 1)..n {
                assert_eq!(
                    ig.interferes(Value::new(a), Value::new(b)),
                    expect.contains(&(a, b)),
                    "seed {seed}: edge (v{a}, v{b})"
                );
            }
        }
        // Degrees must be consistent with the edge set.
        for a in 0..n {
            let deg = expect.iter().filter(|&&(x, y)| x == a || y == a).count();
            assert_eq!(ig.degree(Value::new(a)), deg, "seed {seed}: degree v{a}");
        }
    }
}

#[test]
fn restricted_graph_agrees_on_tracked_pairs() {
    let gcfg = GenConfig::default();
    for seed in 100..140u64 {
        let mut f = lower(seed, &gcfg);
        build_ssa(&mut f, SsaFlavor::Pruned, false);
        destruct_via_webs(&mut f);
        let cfg = ControlFlowGraph::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        // Track exactly the copy-related values.
        let mut tracked: Vec<Value> = Vec::new();
        for b in f.blocks() {
            for &inst in f.block_insts(b) {
                if let InstKind::Copy { src } = f.inst(inst).kind {
                    tracked.push(f.inst(inst).dst.unwrap());
                    tracked.push(src);
                }
            }
        }
        let full = InterferenceGraph::build(&f, &cfg, &live, None);
        let small = InterferenceGraph::build(&f, &cfg, &live, Some(&tracked));
        for &a in &tracked {
            for &b in &tracked {
                assert_eq!(
                    full.interferes(a, b),
                    small.interferes(a, b),
                    "seed {seed}: ({a}, {b})"
                );
            }
        }
    }
}

#[test]
fn briggs_and_briggs_star_identical_on_generated_programs() {
    let gcfg = GenConfig {
        stmts: 18,
        ..Default::default()
    };
    for seed in 200..280u64 {
        let mut f = lower(seed, &gcfg);
        build_ssa(&mut f, SsaFlavor::Pruned, false);
        destruct_via_webs(&mut f);
        let mut full = f.clone();
        let mut star = f.clone();
        let fs = coalesce_copies(
            &mut full,
            &BriggsOptions {
                mode: GraphMode::Full,
                ..Default::default()
            },
        );
        let ss = coalesce_copies(
            &mut star,
            &BriggsOptions {
                mode: GraphMode::Restricted,
                ..Default::default()
            },
        );
        assert_eq!(fs.copies_removed, ss.copies_removed, "seed {seed}");
        assert_eq!(fs.copies_remaining, ss.copies_remaining, "seed {seed}");
        assert_eq!(
            full.static_copy_count(),
            star.static_copy_count(),
            "seed {seed}: different residual copies"
        );
        // And the restricted graph never allocates a larger matrix.
        assert!(
            ss.peak_matrix_bytes() <= fs.peak_matrix_bytes(),
            "seed {seed}: restricted matrix larger"
        );
    }
}

#[test]
fn interference_is_symmetric_and_irreflexive_at_scale() {
    let gcfg = GenConfig {
        stmts: 40,
        vars: 12,
        ..Default::default()
    };
    let mut f = lower(999, &gcfg);
    build_ssa(&mut f, SsaFlavor::Pruned, false);
    destruct_via_webs(&mut f);
    let cfg = ControlFlowGraph::compute(&f);
    let live = Liveness::compute(&f, &cfg);
    let ig = InterferenceGraph::build(&f, &cfg, &live, None);
    let n = f.num_values();
    for a in 0..n {
        assert!(!ig.interferes(Value::new(a), Value::new(a)));
        for b in 0..n {
            assert_eq!(
                ig.interferes(Value::new(a), Value::new(b)),
                ig.interferes(Value::new(b), Value::new(a))
            );
        }
    }
    let _ = Block::new(0);
}
