//! Property tests for the SSA spiller on random programs.
//!
//! Three properties, checked over generated programs at several k:
//!
//! - **Strict SSA is preserved.** Spilling inserts `spill` after defs
//!   and fresh-named `reload`s before uses; both respect dominance, so
//!   the verifier must accept every output of both strategies.
//! - **The reported MaxLive is certified.** `SpillStats::maxlive_after`
//!   must equal the pressure analysis' MaxLive, which the chordality
//!   certifier independently confirms as the clique number ω (strict
//!   SSA interference graphs are chordal, so MaxLive = ω = χ). When the
//!   spiller claims success (`maxlive_after ≤ k`), that claim is
//!   therefore a *certificate* that k registers suffice.
//! - **Spilling is deterministic.** The same input spilled twice gives
//!   byte-identical text and identical stats — a precondition for the
//!   driver's jobs-independence guarantee and the serve cache.

use fcc_analysis::AnalysisManager;
use fcc_ir::Function;
use fcc_pressure::summarize;
use fcc_regalloc::{spill_to_k, SpillStrategy};
use fcc_ssa::{build_ssa, verify_ssa, SsaFlavor};
use fcc_workloads::{generate, GenConfig};

const KS: [u32; 3] = [2, 4, 8];
const STRATEGIES: [SpillStrategy; 2] = [SpillStrategy::Everywhere, SpillStrategy::CostGuided];

fn ssa_program(seed: u64) -> Function {
    let prog = generate(seed, &GenConfig::default());
    let mut f = fcc_frontend::lower_program(&prog).expect("generated programs lower");
    build_ssa(&mut f, SsaFlavor::Pruned, true);
    verify_ssa(&f).expect("built SSA verifies");
    f
}

#[test]
fn spilling_preserves_strict_ssa() {
    for seed in 0..40u64 {
        let ssa = ssa_program(seed);
        for k in KS {
            for strategy in STRATEGIES {
                let mut f = ssa.clone();
                spill_to_k(&mut f, k, strategy);
                verify_ssa(&f).unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}, k={k}, {}: spilling broke SSA: {e}",
                        strategy.label()
                    )
                });
            }
        }
    }
}

#[test]
fn post_spill_maxlive_is_certified_by_chordality() {
    for seed in 0..40u64 {
        let ssa = ssa_program(seed);
        for k in KS {
            for strategy in STRATEGIES {
                let mut f = ssa.clone();
                let stats = spill_to_k(&mut f, k, strategy);
                let mut am = AnalysisManager::new();
                let summary = summarize(&f, &mut am).unwrap_or_else(|e| {
                    panic!("seed {seed}, k={k}: post-spill SSA must stay chordal: {e}")
                });
                assert_eq!(
                    summary.maxlive,
                    stats.maxlive_after,
                    "seed {seed}, k={k}, {}: the spiller's reported MaxLive must \
                     match the pressure analysis",
                    strategy.label()
                );
                assert_eq!(
                    summary.omega, summary.maxlive,
                    "seed {seed}, k={k}: certificate ω must equal MaxLive"
                );
                // The spiller is best-effort, but when it claims success the
                // claim is certified: ω ≤ k means k registers suffice.
                if stats.maxlive_after <= k {
                    assert!(
                        summary.omega <= k,
                        "seed {seed}, k={k}: certified ω exceeds k"
                    );
                }
            }
        }
    }
}

#[test]
fn spilling_is_deterministic() {
    for seed in 0..40u64 {
        let ssa = ssa_program(seed);
        for k in KS {
            for strategy in STRATEGIES {
                let mut a = ssa.clone();
                let mut b = ssa.clone();
                let sa = spill_to_k(&mut a, k, strategy);
                let sb = spill_to_k(&mut b, k, strategy);
                assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "seed {seed}, k={k}, {}: spilling must be a pure function of \
                     its input",
                    strategy.label()
                );
                assert_eq!(
                    (sa.spills, sa.reloads, sa.maxlive_after),
                    (sb.spills, sb.reloads, sb.maxlive_after)
                );
            }
        }
    }
}
