//! The coalescing soundness auditor.
//!
//! [`audit_destruction`] certifies a completed SSA-destruction run from
//! its [`DestructionTrace`] alone. It recomputes the CFG, dominator
//! tree and *dataflow* liveness of the pre-destruction snapshot from
//! scratch — no analysis manager, no sparse shortcut, nothing the
//! destructor itself used — and checks the two properties the paper's
//! correctness argument rests on:
//!
//! 1. **Interference freedom** (Theorem 2.2, Lemma 2.1): no congruence
//!    class merges two names that interfere. Interference is decided
//!    from liveness and dominance only — `u` (whose definition
//!    dominates `v`'s) interferes with `v` iff `u` is live-out of `v`'s
//!    defining block or has a use strictly after `v`'s definition in
//!    that block. Names with dominance-incomparable definitions cannot
//!    interfere in strict SSA, and a copy at the last use does not
//!    count (the strict `>`) — both exactly as the coalescer assumes.
//!
//! 2. **Copy exactness** (§3.6): the `Waiting` array holds precisely
//!    the φ moves the class partition could not absorb — for every live
//!    φ and argument edge whose destination and argument landed in
//!    different classes, the move `class(dst) ← class(arg)` at the end
//!    of the predecessor, and nothing it did not have to hold (extras
//!    are warnings: correct but wasteful). Skipped when the trace
//!    carries no `Waiting` array (Sreedhar Method I isolates instead of
//!    absorbing).

use std::collections::{HashMap, HashSet};

use fcc_analysis::{DomTree, Liveness};
use fcc_ir::{Block, ControlFlowGraph, Diagnostic, InstKind, Value};
use fcc_ssa::parcopy::Move;
use fcc_ssa::trace::DestructionTrace;

/// Two names in one congruence class interfere. Always an error: the
/// destructed program computes something else.
pub const RULE_CLASS_INTERFERENCE: &str = "class-interference";
/// A φ move the partition could not absorb is missing from `Waiting`.
pub const RULE_COPY_MISSING: &str = "copy-missing";
/// `Waiting` holds a copy no live φ edge requires. Correct but wasteful.
pub const RULE_COPY_REDUNDANT: &str = "copy-redundant";

/// Audit one destruction run. Returns all findings; error severity
/// means the run was unsound (interfering class or missing copy),
/// warnings mean it was wasteful (redundant copies).
pub fn audit_destruction(trace: &DestructionTrace) -> Vec<Diagnostic> {
    let func = &trace.pre;
    let cfg = ControlFlowGraph::compute(func);
    let dt = DomTree::compute(func, &cfg);
    let live = Liveness::compute(func, &cfg);
    let n = func.num_values();

    // Definition sites and per-block last ordinary-use positions over
    // reachable code. φ-argument uses are edge uses, visible to the
    // interference test through live-out of the predecessor instead.
    let mut def_site: Vec<Option<(Block, u32)>> = vec![None; n];
    let mut last_use: HashMap<(Block, Value), u32> = HashMap::new();
    let mut use_count: Vec<u32> = vec![0; n];
    for b in func.blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for (pos, &inst) in func.block_insts(b).iter().enumerate() {
            let data = func.inst(inst);
            if let Some(d) = data.dst {
                if def_site[d.index()].is_none() {
                    def_site[d.index()] = Some((b, pos as u32));
                }
            }
            data.kind.for_each_use(|v| {
                use_count[v.index()] += 1;
                let slot = last_use.entry((b, v)).or_insert(pos as u32);
                *slot = (*slot).max(pos as u32);
            });
            if let InstKind::Phi { args } = &data.kind {
                for a in args {
                    use_count[a.value.index()] += 1;
                }
            }
        }
    }

    let mut out = Vec::new();

    // ---- 1. Interference freedom of every congruence class ----
    for (rep, members) in trace.classes() {
        let sited: Vec<(Value, Block, u32)> = members
            .iter()
            .filter_map(|&m| def_site[m.index()].map(|(b, p)| (m, b, p)))
            .collect();
        for i in 0..sited.len() {
            for j in (i + 1)..sited.len() {
                let (a, ab, ap) = sited[i];
                let (b, bb, bp) = sited[j];
                // Order the pair by definition-site dominance; names with
                // incomparable definitions cannot interfere in strict SSA.
                let (parent, child, cb, cp) = if site_dominates((ab, ap), (bb, bp), &dt) {
                    (a, b, bb, bp)
                } else if site_dominates((bb, bp), (ab, ap), &dt) {
                    (b, a, ab, ap)
                } else {
                    continue;
                };
                let interferes = live.is_live_out(parent, cb)
                    || last_use.get(&(cb, parent)).is_some_and(|&u| u > cp);
                if interferes {
                    out.push(
                        Diagnostic::error(
                            RULE_CLASS_INTERFERENCE,
                            format!(
                                "congruence class {rep} merges interfering names: {parent} \
                                 is live across the definition of {child} in {cb}"
                            ),
                        )
                        .in_block(cb)
                        .on_value(child),
                    );
                }
            }
        }
    }

    // ---- 2. Copy exactness of the Waiting array ----
    if let Some(waiting) = &trace.waiting {
        // Required: for every live φ and argument edge whose destination
        // and argument classes differ, one move class(dst) <- class(arg)
        // at the end of the predecessor (deduplicated per block, exactly
        // as the coalescer builds Waiting).
        let mut required: HashMap<Block, Vec<Move>> = HashMap::new();
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for phi in func.block_phis(b) {
                let data = func.inst(phi);
                let Some(dst) = data.dst else { continue };
                if use_count[dst.index()] == 0 {
                    continue; // dead φ: no moves required
                }
                let InstKind::Phi { args } = &data.kind else {
                    continue;
                };
                let dn = trace.class(dst);
                for a in args {
                    let an = trace.class(a.value);
                    if an != dn {
                        let w = required.entry(a.pred).or_default();
                        if !w.contains(&(dn, an)) {
                            w.push((dn, an));
                        }
                    }
                }
            }
        }

        let mut actual: HashMap<Block, HashSet<Move>> = HashMap::new();
        for (b, moves) in waiting {
            let set = actual.entry(*b).or_default();
            for &(d, s) in moves {
                if d != s {
                    set.insert((d, s));
                }
            }
        }

        let mut blocks: Vec<Block> = required.keys().chain(actual.keys()).copied().collect();
        blocks.sort_unstable();
        blocks.dedup();
        for b in blocks {
            let req = required.get(&b);
            let act = actual.get(&b);
            if let Some(req) = req {
                for &(d, s) in req {
                    if !act.is_some_and(|a| a.contains(&(d, s))) {
                        out.push(
                            Diagnostic::error(
                                RULE_COPY_MISSING,
                                format!(
                                    "required copy {d} <- {s} at the end of {b} is missing \
                                     from the Waiting array"
                                ),
                            )
                            .in_block(b)
                            .on_value(d),
                        );
                    }
                }
            }
            if let Some(act) = act {
                let mut extras: Vec<Move> = act
                    .iter()
                    .filter(|m| !req.is_some_and(|r| r.contains(m)))
                    .copied()
                    .collect();
                extras.sort_unstable();
                for (d, s) in extras {
                    out.push(
                        Diagnostic::warning(
                            RULE_COPY_REDUNDANT,
                            format!(
                                "Waiting copy {d} <- {s} at the end of {b} is not required \
                                 by any live phi edge"
                            ),
                        )
                        .in_block(b)
                        .on_value(d),
                    );
                }
            }
        }
    }

    out
}

/// Does the definition at `a` strictly precede (dominate) the one at
/// `b`? Same-block sites compare by instruction position.
fn site_dominates(a: (Block, u32), b: (Block, u32), dt: &DomTree) -> bool {
    if a.0 == b.0 {
        a.1 < b.1
    } else {
        dt.strictly_dominates(a.0, b.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_analysis::AnalysisManager;
    use fcc_core::{coalesce_ssa_traced, CoalesceOptions};
    use fcc_ir::parse::parse_function;
    use fcc_ssa::{build_ssa, destruct_sreedhar_i_traced, destruct_standard_traced, SsaFlavor};

    /// The swap loop: after copy folding the two φ destinations are
    /// mutually live and must stay in separate classes.
    const SWAP: &str = "
        function @swap(1) {
        b0:
            v0 = param 0
            v1 = const 1
            v2 = const 2
            jump b1
        b1:
            v3 = lt v1, v0
            branch v3, b2, b3
        b2:
            v4 = copy v1
            v1 = copy v2
            v2 = copy v4
            jump b1
        b3:
            return v2
        }";

    const SUM: &str = "
        function @sum(1) {
        b0:
            v0 = param 0
            v1 = const 0
            v2 = const 0
            jump b1
        b1:
            v3 = lt v2, v0
            branch v3, b2, b3
        b2:
            v4 = copy v1
            v1 = add v4, v2
            v5 = const 1
            v2 = add v2, v5
            jump b1
        b3:
            return v1
        }";

    fn has_errors(diags: &[Diagnostic]) -> bool {
        diags.iter().any(|d| d.is_error())
    }

    #[test]
    fn manually_merged_interfering_names_are_flagged() {
        // v0 and v1 are simultaneously live; merging them is unsound.
        let f = parse_function(
            "function @bad(0) {
             b0:
                 v0 = const 1
                 v1 = const 2
                 v2 = add v0, v1
                 return v2
             }",
        )
        .unwrap();
        let mut trace = fcc_ssa::trace::DestructionTrace::identity(f, None);
        trace.class_of[1] = Value::new(0); // merge v1 into v0's class
        let diags = audit_destruction(&trace);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RULE_CLASS_INTERFERENCE && d.is_error()),
            "{diags:?}"
        );
        // Acceptance criterion: the rule id shows up in both renderings.
        let text = diags[0].render(&trace.pre);
        assert!(text.contains("class-interference"), "{text}");
        let json = diags[0].to_json(Some(&trace.pre));
        assert!(json.contains("\"rule\":\"class-interference\""), "{json}");
    }

    #[test]
    fn copy_at_last_use_does_not_interfere() {
        // v1 = copy v0 where v0 dies at the copy: classic coalescable
        // pair, must NOT be reported when merged.
        let f = parse_function(
            "function @ok(1) {
             b0:
                 v0 = param 0
                 v1 = copy v0
                 v2 = add v1, v1
                 return v2
             }",
        )
        .unwrap();
        let mut trace = fcc_ssa::trace::DestructionTrace::identity(f, None);
        trace.class_of[1] = Value::new(0);
        let diags = audit_destruction(&trace);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn coalesce_run_audits_clean_and_copy_exact() {
        for src in [SWAP, SUM] {
            let mut f = parse_function(src).unwrap();
            build_ssa(&mut f, SsaFlavor::Pruned, true);
            let mut am = AnalysisManager::new();
            let (_, trace) = coalesce_ssa_traced(&mut f, &CoalesceOptions::default(), &mut am);
            let diags = audit_destruction(&trace);
            assert!(!has_errors(&diags), "{src}: {diags:?}");
            // The coalescer's Waiting must be *exactly* the required
            // copies: no redundancy warnings either.
            assert!(diags.is_empty(), "{src}: {diags:?}");
        }
    }

    #[test]
    fn standard_destruction_audits_sound() {
        for src in [SWAP, SUM] {
            let mut f = parse_function(src).unwrap();
            build_ssa(&mut f, SsaFlavor::Pruned, true);
            let mut am = AnalysisManager::new();
            let (_, trace) = destruct_standard_traced(&mut f, &mut am);
            let diags = audit_destruction(&trace);
            // Identity classes cannot interfere; Waiting may hold
            // more copies than a coalescer would (that is the point of
            // the paper), so only warnings are acceptable.
            assert!(!has_errors(&diags), "{src}: {diags:?}");
        }
    }

    #[test]
    fn sreedhar_destruction_audits_sound() {
        for src in [SWAP, SUM] {
            let mut f = parse_function(src).unwrap();
            build_ssa(&mut f, SsaFlavor::Pruned, true);
            let (_, trace) = destruct_sreedhar_i_traced(&mut f);
            let diags = audit_destruction(&trace);
            assert!(!has_errors(&diags), "{src}: {diags:?}");
        }
    }

    #[test]
    fn webs_on_unfolded_ssa_audit_clean() {
        let mut f = parse_function(SUM).unwrap();
        build_ssa(&mut f, SsaFlavor::Pruned, false);
        let (_, trace) = fcc_regalloc::destruct_via_webs_traced(&mut f);
        let diags = audit_destruction(&trace);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn webs_on_folded_ssa_are_caught_unsound() {
        // With copy folding the swap's φ destinations interfere, and
        // φ-web unioning merges them anyway — the exact failure mode
        // the paper's algorithm exists to avoid. The auditor must see
        // it.
        let mut f = parse_function(SWAP).unwrap();
        build_ssa(&mut f, SsaFlavor::Pruned, true);
        let (_, trace) = fcc_regalloc::destruct_via_webs_traced(&mut f);
        let diags = audit_destruction(&trace);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RULE_CLASS_INTERFERENCE && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_waiting_copy_is_an_error() {
        let mut f = parse_function(SUM).unwrap();
        build_ssa(&mut f, SsaFlavor::Pruned, true);
        let mut am = AnalysisManager::new();
        let (_, mut trace) = coalesce_ssa_traced(&mut f, &CoalesceOptions::default(), &mut am);
        if let Some(waiting) = &mut trace.waiting {
            // Drop every recorded copy: anything required becomes missing.
            let had: usize = waiting.iter().map(|(_, m)| m.len()).sum();
            waiting.clear();
            if had > 0 {
                let diags = audit_destruction(&trace);
                assert!(
                    diags.iter().any(|d| d.rule == RULE_COPY_MISSING),
                    "{diags:?}"
                );
            }
        }
    }
}
