//! Stage-aware register-pressure lint rules.
//!
//! Both rules take a register target `k` and warn when the program's
//! pressure story stops fitting it:
//!
//! * [`RULE_PRESSURE_EXCEEDS_K`] (SSA stage): the function's MaxLive
//!   exceeds `k`. Under strict SSA MaxLive equals the chromatic number
//!   of the interference graph (see `fcc-pressure`), so this is not a
//!   heuristic — the function *provably* does not fit `k` registers
//!   without spilling.
//! * [`RULE_COALESCE_RAISES_MAXLIVE`] (final stage): a copy whose
//!   endpoints do not interfere — exactly what a coalescer would merge —
//!   but where the merge would create a clique larger than `k` in the
//!   interference graph even though MaxLive ≤ k. Post-destruction code
//!   is no longer SSA, its interference graph is no longer chordal, and
//!   merging two non-interfering ranges can manufacture a clique no
//!   program point exhibits: the point-based bound here is a genuine
//!   clique in the merged graph, so coalescing the flagged copy would
//!   push the register demand past `k` while leaving MaxLive unchanged —
//!   the paper's coalescing decision made pressure-aware.

use fcc_analysis::pressure::{for_each_point, Pressure};
use fcc_analysis::AnalysisManager;
use fcc_ir::{Diagnostic, Function, Inst, InstKind, Value};
use fcc_pressure::InterferenceRelation;

use crate::rules::LintRule;
use crate::LintStage;

/// MaxLive exceeds the k-register target.
pub const RULE_PRESSURE_EXCEEDS_K: &str = "pressure-exceeds-k";
/// Coalescing a copy would create a clique past the k-register target.
pub const RULE_COALESCE_RAISES_MAXLIVE: &str = "coalesce-raises-maxlive";

/// The pressure rule suite for register target `k`, in execution order.
/// Run alongside [`crate::default_rules`] or on their own via
/// [`crate::lint_with_rules`].
pub fn pressure_rules(k: u32) -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(PressureExceedsK { k }),
        Box::new(CoalesceRaisesMaxlive { k }),
    ]
}

struct PressureExceedsK {
    k: u32,
}

impl LintRule for PressureExceedsK {
    fn id(&self) -> &'static str {
        RULE_PRESSURE_EXCEEDS_K
    }

    fn description(&self) -> &'static str {
        "function MaxLive must fit the k-register target"
    }

    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Ssa
    }

    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let pressure = am.pressure(func);
        let maxlive = pressure.maxlive();
        if maxlive > self.k {
            let mut d = Diagnostic::warning(
                RULE_PRESSURE_EXCEEDS_K,
                format!(
                    "MaxLive {maxlive} exceeds the {k}-register target: \
                     the function cannot be coloured with {k} registers without spilling",
                    k = self.k
                ),
            );
            if let Some(b) = pressure.max_block() {
                d = d.in_block(b);
            }
            out.push(d);
        }
    }
}

struct CoalesceRaisesMaxlive {
    k: u32,
}

impl LintRule for CoalesceRaisesMaxlive {
    fn id(&self) -> &'static str {
        RULE_COALESCE_RAISES_MAXLIVE
    }

    fn description(&self) -> &'static str {
        "coalescing a copy must not push the register demand past k"
    }

    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Final
    }

    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let cfg = am.cfg(func);
        let live = am.liveness(func);
        let maxlive = Pressure::compute(func, &cfg, &live).maxlive();
        if maxlive > self.k {
            // Already infeasible without any coalescing; the SSA-stage
            // pressure rule owns that report.
            return;
        }
        let ig = InterferenceRelation::build(func, &cfg, &live);

        // Coalescing candidates: copies whose endpoints never share a
        // program point (what Briggs-style coalescing would merge).
        let mut candidates: Vec<(Inst, Value, Value)> = Vec::new();
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &i in func.block_insts(b) {
                let data = func.inst(i);
                if let (InstKind::Copy { src }, Some(dst)) = (&data.kind, data.dst) {
                    if dst != *src && ig.occurs(dst) && ig.occurs(*src) && !ig.interferes(dst, *src)
                    {
                        candidates.push((i, dst, *src));
                    }
                }
            }
        }
        if candidates.is_empty() {
            return;
        }

        // For each candidate, the largest clique the merge would create:
        // a point where neither endpoint is live but every live value
        // interferes with one of them extends, after the merge, to a
        // (pressure + 1)-clique containing the merged node.
        let mut bound: Vec<u32> = candidates.iter().map(|_| 0).collect();
        for_each_point(func, &cfg, &live, |_, set| {
            let count = set.count() as u32;
            for (ci, &(_, d, s)) in candidates.iter().enumerate() {
                if count < bound[ci] || set.contains(d.index()) || set.contains(s.index()) {
                    continue;
                }
                let all_interfere = set
                    .iter()
                    .all(|v| ig.rows()[v].contains(d.index()) || ig.rows()[v].contains(s.index()));
                if all_interfere {
                    bound[ci] = count + 1;
                }
            }
        });

        for (ci, &(i, d, s)) in candidates.iter().enumerate() {
            if bound[ci] > self.k {
                out.push(
                    Diagnostic::warning(
                        RULE_COALESCE_RAISES_MAXLIVE,
                        format!(
                            "coalescing {s} into {d} would create a {}-clique, past the \
                             {}-register target (MaxLive is only {maxlive})",
                            bound[ci], self.k
                        ),
                    )
                    .at_inst(i)
                    .on_value(d),
                );
            }
        }
    }
}
