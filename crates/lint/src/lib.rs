//! # fcc-lint — invariant-checking static analysis over the IR
//!
//! The paper's correctness argument rests on program invariants — strict
//! / dominance-respecting SSA (Theorem 2.1), interference decidable from
//! per-block liveness (Theorem 2.2), interference-free φ-congruence
//! classes after coalescing — that the rest of the workspace mostly
//! *assumes*. This crate turns each of them into an executable check:
//!
//! * a **rule registry** ([`default_rules`]) of analyses over a
//!   [`Function`], each reporting findings through the unified
//!   [`Diagnostic`] model of `fcc-ir` and pulling cached analyses from a
//!   shared [`AnalysisManager`];
//! * a **stage model** ([`LintStage`]): pre-SSA CFG code, SSA, and
//!   destructed (post-SSA) code obey different subsets of the catalogue;
//! * a **coalescing soundness auditor** ([`audit::audit_destruction`])
//!   that recomputes interference from liveness alone — Theorem 2.2, no
//!   interference graph — and certifies the congruence classes and
//!   `Waiting`-array copies of any traced destruction run;
//! * text and JSON rendering ([`LintReport`]) for the `fcc lint` CLI
//!   subcommand and CI.
//!
//! The rule catalogue and the paper theorem/figure each rule enforces
//! are documented in DESIGN.md ("The invariant catalogue").
//!
//! ## Example
//!
//! ```
//! use fcc_analysis::AnalysisManager;
//! use fcc_ir::parse::parse_function;
//! use fcc_lint::{lint_function, LintStage};
//!
//! // v1's definition does not dominate its use in b3.
//! let f = parse_function(
//!     "function @bad(0) {
//!      b0:
//!          v0 = const 1
//!          branch v0, b1, b2
//!      b1:
//!          v1 = const 2
//!          jump b3
//!      b2:
//!          jump b3
//!      b3:
//!          return v1
//!      }",
//! ).unwrap();
//! let report = lint_function(&f, &mut AnalysisManager::new(), LintStage::Ssa);
//! assert!(report.has_errors());
//! assert!(report.diagnostics.iter().any(|d| d.rule == "ssa-dominance"));
//! ```

pub mod audit;
pub mod pressure;
pub mod rules;

pub use audit::{
    audit_destruction, RULE_CLASS_INTERFERENCE, RULE_COPY_MISSING, RULE_COPY_REDUNDANT,
};
pub use pressure::{pressure_rules, RULE_COALESCE_RAISES_MAXLIVE, RULE_PRESSURE_EXCEEDS_K};
pub use rules::{default_rules, LintRule};

use fcc_analysis::AnalysisManager;
use fcc_ir::diagnostic::json_escape;
use fcc_ir::{Diagnostic, Function, Severity};

/// Which pipeline stage a function is at — different subsets of the rule
/// catalogue apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintStage {
    /// Pre-SSA CFG code (front-end output): structure and definite
    /// assignment, but names may be defined many times.
    Cfg,
    /// Regular SSA: the full catalogue.
    Ssa,
    /// After SSA destruction: structure and definite assignment again
    /// (classes merged names, so dominance no longer applies), plus
    /// no-φs.
    Final,
}

impl std::fmt::Display for LintStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LintStage::Cfg => "cfg",
            LintStage::Ssa => "ssa",
            LintStage::Final => "final",
        })
    }
}

/// The outcome of linting one function at one stage.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// The stage the suite ran at.
    pub stage: LintStage,
    /// Every finding, in rule-registry order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any finding is error severity (the check failed).
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Render as human-readable text, one finding per paragraph with the
    /// offending instruction quoted from `func`, plus a summary line.
    pub fn render_text(&self, func: &Function) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(func));
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: stage {}: {} error(s), {} warning(s), {} finding(s)",
            func.name,
            self.stage,
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// Render as one JSON object:
    /// `{"function", "stage", "errors", "warnings", "diagnostics": [...]}`.
    pub fn render_json(&self, func: &Function) -> String {
        let diags: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| d.to_json(Some(func)))
            .collect();
        format!(
            "{{\"function\":\"{}\",\"stage\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
            json_escape(&func.name),
            self.stage,
            self.error_count(),
            self.warning_count(),
            diags.join(",")
        )
    }
}

/// Run the default rule suite over `func` at `stage`.
///
/// The structural rule always runs first; if it reports errors the
/// remaining rules are skipped — they assume a well-shaped function (the
/// dominator tree of a terminator-less block is not meaningful).
pub fn lint_function(func: &Function, am: &mut AnalysisManager, stage: LintStage) -> LintReport {
    lint_with_rules(func, am, stage, &default_rules())
}

/// [`lint_function`] with an explicit rule list (the first structural
/// rule still gates the rest).
pub fn lint_with_rules(
    func: &Function,
    am: &mut AnalysisManager,
    stage: LintStage,
    rules: &[Box<dyn LintRule>],
) -> LintReport {
    let mut diagnostics = Vec::new();
    let mut shape_ok = true;
    for rule in rules {
        if !rule.applies(stage) {
            continue;
        }
        if rule.structural() {
            let before = diagnostics.len();
            rule.check(func, am, &mut diagnostics);
            shape_ok &= diagnostics[before..].iter().all(|d| !d.is_error());
        } else if shape_ok {
            rule.check(func, am, &mut diagnostics);
        }
    }
    LintReport { stage, diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;

    #[test]
    fn clean_ssa_gets_a_clean_report() {
        let f = parse_function(
            "function @ok(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 jump b1
             b1:
                 v2 = phi [b0: v1], [b1: v3]
                 v3 = add v2, v0
                 v4 = lt v3, v0
                 branch v4, b1, b2
             b2:
                 return v3
             }",
        )
        .unwrap();
        let r = lint_function(&f, &mut AnalysisManager::new(), LintStage::Ssa);
        assert!(!r.has_errors(), "{}", r.render_text(&f));
        // The loop-exit edge b1->b2 is not critical (b2 has one pred);
        // the backedge b1->b1 is critical and carries a phi: a warning.
        assert!(r.warning_count() >= 1, "{}", r.render_text(&f));
    }

    #[test]
    fn structural_errors_gate_the_rest_of_the_suite() {
        // No terminator: the SSA rules must not run (their analyses
        // assume block shape), so the only findings are structural.
        let mut f = fcc_ir::Function::new("noterm");
        let b0 = f.add_block();
        let v = f.new_value();
        f.append_inst(b0, fcc_ir::InstKind::Const { imm: 1 }, Some(v));
        let r = lint_function(&f, &mut AnalysisManager::new(), LintStage::Ssa);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().all(|d| d.rule == "structure"), "{r:?}");
    }

    #[test]
    fn corrupted_dominance_reports_rule_id_in_text_and_json() {
        // Acceptance-criteria shape: a use not dominated by its def.
        let f = parse_function(
            "function @bad(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b3
             b2:
                 jump b3
             b3:
                 return v1
             }",
        )
        .unwrap();
        let r = lint_function(&f, &mut AnalysisManager::new(), LintStage::Ssa);
        assert!(r.has_errors());
        let text = r.render_text(&f);
        assert!(text.contains("error[ssa-dominance]"), "{text}");
        let json = r.render_json(&f);
        assert!(json.contains("\"rule\":\"ssa-dominance\""), "{json}");
        assert!(json.contains("\"errors\":"), "{json}");
    }

    #[test]
    fn final_stage_rejects_surviving_phis() {
        let f = parse_function(
            "function @leftover(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b3
             b2:
                 v2 = const 3
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }",
        )
        .unwrap();
        let r = lint_function(&f, &mut AnalysisManager::new(), LintStage::Final);
        assert!(r.has_errors());
        assert!(
            r.diagnostics.iter().any(|d| d.rule == "phi-free"),
            "{}",
            r.render_text(&f)
        );
    }

    #[test]
    fn json_report_is_parseable_shape() {
        let f = parse_function("function @t(0) {\nb0:\n v0 = const 1\n return v0\n}").unwrap();
        let r = lint_function(&f, &mut AnalysisManager::new(), LintStage::Ssa);
        let j = r.render_json(&f);
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"function\":\"t\""), "{j}");
        assert!(j.contains("\"diagnostics\":["), "{j}");
    }
}
