//! The lint rule registry.
//!
//! Each rule turns one of the paper's correctness premises into an
//! executable check over a [`Function`]. Rules pull cached analyses from
//! the shared [`AnalysisManager`] where possible and report through the
//! unified [`Diagnostic`] model; DESIGN.md maps every rule id to the
//! theorem or figure it enforces.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use fcc_analysis::{AnalysisManager, BitSet, UnionFind};
use fcc_core::dforest::DominanceForest;
use fcc_dataflow::FunctionAnalysis;
use fcc_ir::{Block, Diagnostic, Function, InstKind, Value};

use crate::LintStage;

/// One invariant check. Implementations must not mutate the function;
/// the manager is `&mut` only so cached analyses can be materialised.
pub trait LintRule {
    /// Stable rule identifier, used in diagnostics and JSON output.
    fn id(&self) -> &'static str;

    /// One-line description of the invariant the rule enforces.
    fn description(&self) -> &'static str;

    /// Whether the rule applies to functions at `stage`.
    fn applies(&self, stage: LintStage) -> bool;

    /// Structural rules run unconditionally and gate the rest of the
    /// suite: if one reports an error, non-structural rules are skipped.
    fn structural(&self) -> bool {
        false
    }

    /// Run the check, appending findings to `out`.
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>);
}

/// The default rule suite, in execution order. The four `range-*` rules
/// share one cached `fcc-dataflow` fixpoint per function, and the four
/// `mem-*` rules share one cached `fcc-alias` sweep.
pub fn default_rules() -> Vec<Box<dyn LintRule>> {
    let cache = RangeFactsCache::new();
    let mem_cache = MemFactsCache::new();
    vec![
        Box::new(StructureRule),
        Box::new(PhiFreeRule),
        Box::new(StrictSsaRule),
        Box::new(PhiLivenessRule),
        Box::new(CriticalEdgeRule),
        Box::new(PhiPruningRule),
        Box::new(ParallelCopyRule),
        Box::new(DominanceForestRule),
        Box::new(DefiniteInitRule),
        Box::new(RangeSafetyRule::div_by_zero(&cache)),
        Box::new(RangeSafetyRule::shift_bounds(&cache)),
        Box::new(RangeSafetyRule::unreachable_branch(&cache)),
        Box::new(RangeSafetyRule::dead_phi_input(&cache)),
        Box::new(MemSafetyRule::oob_access(&mem_cache)),
        Box::new(MemSafetyRule::uninit_load(&mem_cache)),
        Box::new(MemSafetyRule::dead_store(&mem_cache)),
        Box::new(MemSafetyRule::overlapping_store(&mem_cache)),
    ]
}

/// Where `v`'s definition sits: its block and instruction position.
type DefSite = (Block, u32);

/// Collect each value's unique definition site over reachable blocks.
/// Multiply-defined values keep their *first* site (strict-SSA flags
/// them separately); the returned map has `None` for undefined values.
fn def_sites(func: &Function, am: &mut AnalysisManager) -> Vec<Option<DefSite>> {
    let cfg = am.cfg(func);
    let mut sites: Vec<Option<DefSite>> = vec![None; func.num_values()];
    for b in func.blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for (pos, &inst) in func.block_insts(b).iter().enumerate() {
            if let Some(d) = func.inst(inst).dst {
                if sites[d.index()].is_none() {
                    sites[d.index()] = Some((b, pos as u32));
                }
            }
        }
    }
    sites
}

/// Does the definition at `a` strictly precede (dominate) the one at `b`?
fn site_dominates(a: DefSite, b: DefSite, dt: &fcc_analysis::DomTree) -> bool {
    if a.0 == b.0 {
        a.1 < b.1
    } else {
        dt.strictly_dominates(a.0, b.0)
    }
}

// ---------------------------------------------------------------------
// structure
// ---------------------------------------------------------------------

/// Rule `structure`: the function is well-shaped (entry block, one
/// terminator per block at the end, φs at block heads, φ keys matching
/// predecessors, in-range entity references). Wraps
/// [`fcc_ir::verify::structural_diagnostics`].
pub struct StructureRule;

impl LintRule for StructureRule {
    fn id(&self) -> &'static str {
        fcc_ir::verify::RULE_STRUCTURE
    }
    fn description(&self) -> &'static str {
        "blocks, terminators, phi placement and entity references are well-formed"
    }
    fn applies(&self, _stage: LintStage) -> bool {
        true
    }
    fn structural(&self) -> bool {
        true
    }
    fn check(&self, func: &Function, _am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        out.extend(fcc_ir::verify::structural_diagnostics(func));
    }
}

// ---------------------------------------------------------------------
// phi-free
// ---------------------------------------------------------------------

/// Rule `phi-free`: after SSA destruction no φ-node may survive — a
/// leftover φ means a destruction path forgot an edge (Section 2).
pub struct PhiFreeRule;

impl LintRule for PhiFreeRule {
    fn id(&self) -> &'static str {
        "phi-free"
    }
    fn description(&self) -> &'static str {
        "destructed code contains no phi-nodes"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Final
    }
    fn check(&self, func: &Function, _am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        for b in func.blocks() {
            for phi in func.block_phis(b) {
                let dst = func.inst(phi).dst;
                let mut d =
                    Diagnostic::error(self.id(), format!("phi survived SSA destruction in {b}"))
                        .in_block(b)
                        .at_inst(phi);
                if let Some(v) = dst {
                    d = d.on_value(v);
                }
                out.push(d);
            }
        }
    }
}

// ---------------------------------------------------------------------
// strict SSA (ssa-single-def / ssa-dominance / phi-edge-dominance)
// ---------------------------------------------------------------------

/// Rules `ssa-single-def`, `ssa-dominance` and `phi-edge-dominance`:
/// every name has one reachable definition, each ordinary use is
/// strictly dominated by it, and each φ argument's definition dominates
/// the exit of the matching predecessor (Theorem 2.1). Wraps
/// [`fcc_ssa::verify::ssa_diagnostics`].
pub struct StrictSsaRule;

impl LintRule for StrictSsaRule {
    fn id(&self) -> &'static str {
        fcc_ssa::verify::RULE_DOMINANCE
    }
    fn description(&self) -> &'static str {
        "the function is strict dominance-respecting SSA"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        out.extend(fcc_ssa::verify::ssa_diagnostics(func, am));
    }
}

// ---------------------------------------------------------------------
// phi-operand-liveness
// ---------------------------------------------------------------------

/// Rule `phi-operand-liveness`: every φ argument `[p: v]` must be
/// live-out of predecessor `p` — φ uses happen at predecessor exits
/// (Section 2), and the liveness analysis must agree or interference
/// answers derived from it (Theorem 2.2) are wrong.
pub struct PhiLivenessRule;

impl LintRule for PhiLivenessRule {
    fn id(&self) -> &'static str {
        "phi-operand-liveness"
    }
    fn description(&self) -> &'static str {
        "phi operands are live-out of their predecessor blocks"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let cfg = am.cfg(func);
        let live = am.liveness(func);
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for phi in func.block_phis(b) {
                if let InstKind::Phi { args } = &func.inst(phi).kind {
                    for a in args {
                        if !live.is_live_out(a.value, a.pred) {
                            out.push(
                                Diagnostic::error(
                                    self.id(),
                                    format!(
                                        "phi operand [{}: {}] is not live-out of {}",
                                        a.pred, a.value, a.pred
                                    ),
                                )
                                .in_block(b)
                                .at_inst(phi)
                                .on_value(a.value),
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// critical-edge
// ---------------------------------------------------------------------

/// Rule `critical-edge`: a critical edge into a φ-carrying block cannot
/// host copy insertion — placing the copies in the predecessor clobbers
/// its other successors (the lost-copy problem). Destruction paths must
/// split these first, so their presence in SSA headed for destruction is
/// a warning.
pub struct CriticalEdgeRule;

impl LintRule for CriticalEdgeRule {
    fn id(&self) -> &'static str {
        "critical-edge"
    }
    fn description(&self) -> &'static str {
        "no critical edge leads into a phi-carrying block"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let cfg = am.cfg(func);
        for (p, s) in cfg.critical_edges() {
            if func.block_phis(s).next().is_some() {
                out.push(
                    Diagnostic::warning(
                        self.id(),
                        format!(
                            "critical edge {p} -> {s} carries phi moves; it must be split \
                             before copy insertion (lost-copy hazard)"
                        ),
                    )
                    .in_block(p),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// phi-pruning
// ---------------------------------------------------------------------

/// Rule `phi-pruning`: dead φs (destination never used outside the φ's
/// own self-reference) and redundant φs (all incoming values identical)
/// cost coalescing work for nothing — pruned/semi-pruned construction
/// (Section 2) should have avoided them. Warnings, not errors.
pub struct PhiPruningRule;

impl LintRule for PhiPruningRule {
    fn id(&self) -> &'static str {
        "phi-pruning"
    }
    fn description(&self) -> &'static str {
        "no dead or redundant phi-nodes"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let cfg = am.cfg(func);
        // Use counts over reachable code: ordinary uses plus φ-argument
        // uses, except that a φ referencing its own destination does not
        // keep itself alive.
        let mut uses = vec![0usize; func.num_values()];
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &inst in func.block_insts(b) {
                let data = func.inst(inst);
                data.kind.for_each_use(|v| uses[v.index()] += 1);
                if let InstKind::Phi { args } = &data.kind {
                    for a in args {
                        if Some(a.value) != data.dst {
                            uses[a.value.index()] += 1;
                        }
                    }
                }
            }
        }
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for phi in func.block_phis(b) {
                let data = func.inst(phi);
                let Some(dst) = data.dst else { continue };
                let InstKind::Phi { args } = &data.kind else {
                    continue;
                };
                if uses[dst.index()] == 0 {
                    out.push(
                        Diagnostic::warning(
                            self.id(),
                            format!("dead phi: {dst} has no uses (pruned SSA would omit it)"),
                        )
                        .in_block(b)
                        .at_inst(phi)
                        .on_value(dst),
                    );
                    continue;
                }
                let mut distinct: Vec<Value> = Vec::new();
                for a in args {
                    if a.value != dst && !distinct.contains(&a.value) {
                        distinct.push(a.value);
                    }
                }
                if distinct.len() == 1 {
                    out.push(
                        Diagnostic::warning(
                            self.id(),
                            format!("redundant phi: every operand of {dst} is {}", distinct[0]),
                        )
                        .in_block(b)
                        .at_inst(phi)
                        .on_value(dst),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// parallel-copy
// ---------------------------------------------------------------------

/// Rule `parallel-copy`: the implicit parallel copy on each edge into a
/// φ-carrying block must be well-formed — no two φs may write the same
/// destination on one edge — and cycles (swaps) are reported as notes,
/// including *virtual* swaps only visible after resolving copy chains
/// (Figure 4): the sequentialiser must break these with a temporary.
pub struct ParallelCopyRule;

impl ParallelCopyRule {
    /// Cycles of length ≥ 2 in the functional graph `dst -> src`,
    /// restricted to sources that are themselves destinations.
    fn move_cycles(moves: &[(Value, Value)]) -> Vec<Vec<Value>> {
        let dst_to_src: HashMap<Value, Value> = moves.iter().copied().collect();
        let mut state: HashMap<Value, u8> = HashMap::new(); // 1 = in path, 2 = done
        let mut cycles = Vec::new();
        for &(start, _) in moves {
            if state.contains_key(&start) {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            loop {
                match state.get(&cur) {
                    Some(1) => {
                        let pos = path.iter().position(|&v| v == cur).unwrap();
                        if path.len() - pos >= 2 {
                            cycles.push(path[pos..].to_vec());
                        }
                        break;
                    }
                    Some(_) => break,
                    None => {}
                }
                state.insert(cur, 1);
                path.push(cur);
                match dst_to_src.get(&cur) {
                    Some(&s) if s != cur && dst_to_src.contains_key(&s) => cur = s,
                    _ => break,
                }
            }
            for v in path {
                state.insert(v, 2);
            }
        }
        cycles
    }

    fn fmt_cycle(cycle: &[Value]) -> String {
        let names: Vec<String> = cycle.iter().map(|v| v.to_string()).collect();
        names.join(" <- ")
    }
}

impl LintRule for ParallelCopyRule {
    fn id(&self) -> &'static str {
        "parallel-copy"
    }
    fn description(&self) -> &'static str {
        "per-edge phi parallel copies are well-formed; swap cycles are surfaced"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let cfg = am.cfg(func);
        // Copy chains for virtual-swap resolution: dst -> src of every
        // reachable `copy`.
        let mut copy_src: HashMap<Value, Value> = HashMap::new();
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &inst in func.block_insts(b) {
                let data = func.inst(inst);
                if let (InstKind::Copy { src }, Some(d)) = (&data.kind, data.dst) {
                    copy_src.insert(d, *src);
                }
            }
        }
        let resolve = |mut v: Value| -> Value {
            let mut seen = HashSet::new();
            while let Some(&s) = copy_src.get(&v) {
                if !seen.insert(v) {
                    break;
                }
                v = s;
            }
            v
        };

        for b in func.blocks() {
            if !cfg.is_reachable(b) || func.block_phis(b).next().is_none() {
                continue;
            }
            // preds() lists one entry per edge; a branch with both arms
            // on this block contributes two identical entries.
            let mut preds: Vec<Block> = cfg.preds(b).to_vec();
            preds.sort_unstable();
            preds.dedup();
            for p in preds {
                let mut moves: Vec<(Value, Value)> = Vec::new();
                let mut dests: HashSet<Value> = HashSet::new();
                for phi in func.block_phis(b) {
                    let data = func.inst(phi);
                    let Some(dst) = data.dst else { continue };
                    let InstKind::Phi { args } = &data.kind else {
                        continue;
                    };
                    let Some(a) = args.iter().find(|a| a.pred == p) else {
                        continue; // structure rule reports the missing key
                    };
                    if !dests.insert(dst) {
                        out.push(
                            Diagnostic::error(
                                self.id(),
                                format!("parallel copy on edge {p} -> {b} writes {dst} twice"),
                            )
                            .in_block(b)
                            .at_inst(phi)
                            .on_value(dst),
                        );
                        continue;
                    }
                    moves.push((dst, a.value));
                }
                for cycle in Self::move_cycles(&moves) {
                    out.push(
                        Diagnostic::note(
                            self.id(),
                            format!(
                                "parallel copy on edge {p} -> {b} contains a swap cycle \
                                 ({}); sequentialisation needs a temporary",
                                Self::fmt_cycle(&cycle)
                            ),
                        )
                        .in_block(b),
                    );
                }
                // Virtual swaps (Figure 4): cycles that appear only after
                // substituting copy chains into the sources.
                let raw_count = Self::move_cycles(&moves).len();
                let resolved: Vec<(Value, Value)> =
                    moves.iter().map(|&(d, s)| (d, resolve(s))).collect();
                let virt = Self::move_cycles(&resolved);
                if virt.len() > raw_count {
                    for cycle in virt.into_iter().skip(raw_count) {
                        out.push(
                            Diagnostic::note(
                                self.id(),
                                format!(
                                    "parallel copy on edge {p} -> {b} contains a virtual \
                                     swap through copy chains ({}); Figure 4 applies",
                                    Self::fmt_cycle(&cycle)
                                ),
                            )
                            .in_block(b),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// dominance-forest
// ---------------------------------------------------------------------

/// Rule `dominance-forest`: for every φ web, the dominance forest
/// (Definition 3.1, Figure 1) must agree with a naive nearest-dominating-
/// member computation — each node's parent is exactly the closest other
/// member whose definition site dominates it. Lemma 3.1's edge-only
/// interference walk is sound only if this holds.
pub struct DominanceForestRule;

impl LintRule for DominanceForestRule {
    fn id(&self) -> &'static str {
        "dominance-forest"
    }
    fn description(&self) -> &'static str {
        "dominance forests match the naive nearest-dominating-member relation"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage == LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let cfg = am.cfg(func);
        let dt = am.domtree(func);
        let sites = def_sites(func, am);

        // φ webs: union each φ destination with its arguments.
        let mut uf = UnionFind::new(func.num_values());
        let mut in_web = BitSet::new(func.num_values());
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for phi in func.block_phis(b) {
                let data = func.inst(phi);
                let Some(dst) = data.dst else { continue };
                let InstKind::Phi { args } = &data.kind else {
                    continue;
                };
                in_web.insert(dst.index());
                for a in args {
                    in_web.insert(a.value.index());
                    uf.union(dst.index(), a.value.index());
                }
            }
        }

        for group in uf.groups() {
            if group.len() < 2 || !group.iter().any(|&m| in_web.contains(m)) {
                continue;
            }
            // Every member needs a reachable definition site; strict-SSA
            // reports the ones that do not, so skip the web here.
            let mut members: Vec<(Value, Block, u32)> = Vec::with_capacity(group.len());
            let mut complete = true;
            for &m in &group {
                match sites[m] {
                    Some((b, pos)) => members.push((Value::new(m), b, pos)),
                    None => complete = false,
                }
            }
            if !complete || members.len() < 2 {
                continue;
            }
            let forest = DominanceForest::build(&members, &dt);
            let nodes = forest.nodes();
            for (i, node) in nodes.iter().enumerate() {
                // Naive expected parent: the nearest member (other than
                // the node itself) whose site dominates the node's site.
                // Dominators of a site form a chain, so "nearest" is the
                // maximum under site dominance.
                let here = (node.block, node.def_pos);
                let mut expected: Option<usize> = None;
                for (j, other) in nodes.iter().enumerate() {
                    if i == j || !site_dominates((other.block, other.def_pos), here, &dt) {
                        continue;
                    }
                    expected = match expected {
                        None => Some(j),
                        Some(e)
                            if site_dominates(
                                (nodes[e].block, nodes[e].def_pos),
                                (other.block, other.def_pos),
                                &dt,
                            ) =>
                        {
                            Some(j)
                        }
                        Some(e) => Some(e),
                    };
                }
                if node.parent != expected {
                    let fmt = |idx: Option<usize>| match idx {
                        Some(k) => nodes[k].value.to_string(),
                        None => "none".to_string(),
                    };
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            format!(
                                "dominance forest disagrees with naive dominance for {}: \
                                 forest parent {}, nearest dominating member {}",
                                node.value,
                                fmt(node.parent),
                                fmt(expected)
                            ),
                        )
                        .in_block(node.block)
                        .on_value(node.value),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// definite-init
// ---------------------------------------------------------------------

/// Rule `definite-init`: every use is definitely assigned on all paths
/// from entry — forward must-dataflow over reachable blocks. In SSA this
/// is implied by dominance (Theorem 2.1), so the rule runs on pre-SSA
/// and destructed code, where it catches use-after-destruction of
/// renamed names that the SSA rules can no longer see.
pub struct DefiniteInitRule;

impl LintRule for DefiniteInitRule {
    fn id(&self) -> &'static str {
        "definite-init"
    }
    fn description(&self) -> &'static str {
        "every use is definitely assigned on all paths from entry"
    }
    fn applies(&self, stage: LintStage) -> bool {
        stage != LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let cfg = am.cfg(func);
        let n = func.num_values();
        let nb = func.num_blocks();
        let entry = func.entry();

        // Per-block kill sets (everything the block defines).
        let mut defs: Vec<BitSet> = (0..nb).map(|_| BitSet::new(n)).collect();
        for b in func.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &inst in func.block_insts(b) {
                if let Some(d) = func.inst(inst).dst {
                    defs[b.index()].insert(d.index());
                }
            }
        }

        // Forward must-analysis: OUT[b] = (∩ OUT[preds]) ∪ defs[b], with
        // unvisited blocks at top (None). The sets shrink monotonically,
        // so a count comparison detects change exactly.
        let rpo = cfg.reverse_postorder();
        let mut outs: Vec<Option<BitSet>> = vec![None; nb];
        loop {
            let mut changed = false;
            for &b in &rpo {
                let mut inn: Option<BitSet> = if b == entry {
                    Some(BitSet::new(n))
                } else {
                    None
                };
                for &p in cfg.preds(b) {
                    if let Some(o) = &outs[p.index()] {
                        match &mut inn {
                            None => inn = Some(o.clone()),
                            Some(i) => i.intersect_with(o),
                        }
                    }
                }
                let Some(mut set) = inn else { continue };
                set.union_with(&defs[b.index()]);
                let same = outs[b.index()]
                    .as_ref()
                    .is_some_and(|old| old.count() == set.count());
                if !same {
                    outs[b.index()] = Some(set);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Check every use against the definitely-assigned-so-far set.
        for &b in &rpo {
            let mut assigned = match b == entry {
                true => BitSet::new(n),
                false => {
                    let mut inn: Option<BitSet> = None;
                    for &p in cfg.preds(b) {
                        if let Some(o) = &outs[p.index()] {
                            match &mut inn {
                                None => inn = Some(o.clone()),
                                Some(i) => i.intersect_with(o),
                            }
                        }
                    }
                    inn.unwrap_or_else(|| BitSet::new(n))
                }
            };
            for &inst in func.block_insts(b) {
                let data = func.inst(inst);
                if let InstKind::Phi { args } = &data.kind {
                    // φ uses happen at predecessor exits.
                    for a in args {
                        let ok = outs
                            .get(a.pred.index())
                            .and_then(|o| o.as_ref())
                            .is_none_or(|o| o.contains(a.value.index()));
                        if !ok {
                            out.push(
                                Diagnostic::error(
                                    self.id(),
                                    format!(
                                        "phi operand [{}: {}] is not definitely assigned \
                                         at the exit of {}",
                                        a.pred, a.value, a.pred
                                    ),
                                )
                                .in_block(b)
                                .at_inst(inst)
                                .on_value(a.value),
                            );
                        }
                    }
                } else {
                    data.kind.for_each_use(|v| {
                        if !assigned.contains(v.index()) {
                            out.push(
                                Diagnostic::error(
                                    self.id(),
                                    format!(
                                        "{v} used in {b} but not definitely assigned on \
                                         every path from entry"
                                    ),
                                )
                                .in_block(b)
                                .at_inst(inst)
                                .on_value(v),
                            );
                        }
                    });
                }
                if let Some(d) = data.dst {
                    assigned.insert(d.index());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// range-* (fcc-dataflow safety checkers)
// ---------------------------------------------------------------------

/// One sparse-dataflow fixpoint per linted function, shared by the four
/// `range-*` rules: [`FunctionAnalysis::compute`] runs three solvers, so
/// recomputing it per rule would quadruple the suite's dominant cost.
/// Keyed on the function's name and mutation epoch; lint rules never
/// mutate, so one key survives a whole suite run.
type RangeFactsKey = (String, u64);

struct RangeFactsCache(RefCell<Option<(RangeFactsKey, Rc<Vec<Diagnostic>>)>>);

impl RangeFactsCache {
    fn new() -> Rc<RangeFactsCache> {
        Rc::new(RangeFactsCache(RefCell::new(None)))
    }

    /// The function's safety findings, computed once per (name, epoch).
    fn diagnostics(&self, func: &Function, am: &mut AnalysisManager) -> Rc<Vec<Diagnostic>> {
        let key = (func.name.clone(), func.epoch());
        if let Some((k, diags)) = &*self.0.borrow() {
            if *k == key {
                return Rc::clone(diags);
            }
        }
        let fa = FunctionAnalysis::compute(func, am);
        let diags = Rc::new(fa.safety_diagnostics(func));
        *self.0.borrow_mut() = Some((key, Rc::clone(&diags)));
        diags
    }
}

/// Rules `range-div-by-zero`, `range-shift-bounds`,
/// `range-unreachable-branch` and `range-dead-phi-input`: the
/// `fcc-dataflow` safety checkers (SCCP + value ranges + known bits)
/// surfaced as stage-aware lint findings. All warning severity: the IR's
/// total semantics execute the flagged code fine, but it almost surely
/// diverges from source intent (a provably-zero divisor, a shift amount
/// outside `[0, 63]`, a branch edge or φ input no execution can take).
pub struct RangeSafetyRule {
    id: &'static str,
    description: &'static str,
    cache: Rc<RangeFactsCache>,
}

impl RangeSafetyRule {
    fn div_by_zero(cache: &Rc<RangeFactsCache>) -> RangeSafetyRule {
        RangeSafetyRule {
            id: fcc_dataflow::RULE_DIV_BY_ZERO,
            description: "no division or remainder has a provably-zero divisor",
            cache: Rc::clone(cache),
        }
    }
    fn shift_bounds(cache: &Rc<RangeFactsCache>) -> RangeSafetyRule {
        RangeSafetyRule {
            id: fcc_dataflow::RULE_SHIFT_RANGE,
            description: "no shift amount is provably outside [0, 63]",
            cache: Rc::clone(cache),
        }
    }
    fn unreachable_branch(cache: &Rc<RangeFactsCache>) -> RangeSafetyRule {
        RangeSafetyRule {
            id: fcc_dataflow::RULE_UNREACHABLE_BRANCH,
            description: "no conditional branch has a provably-dead successor edge",
            cache: Rc::clone(cache),
        }
    }
    fn dead_phi_input(cache: &Rc<RangeFactsCache>) -> RangeSafetyRule {
        RangeSafetyRule {
            id: fcc_dataflow::RULE_DEAD_PHI_INPUT,
            description: "no phi input arrives along a provably-dead edge from a live block",
            cache: Rc::clone(cache),
        }
    }
}

impl LintRule for RangeSafetyRule {
    fn id(&self) -> &'static str {
        self.id
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn applies(&self, stage: LintStage) -> bool {
        // The sparse solvers key facts on SSA names (single defs); on
        // pre-SSA or destructed code a name has many defs and the
        // verdicts would be meaningless joins.
        stage == LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let diags = self.cache.diagnostics(func, am);
        out.extend(diags.iter().filter(|d| d.rule == self.id).cloned());
    }
}

// ---------------------------------------------------------------------
// mem-* (fcc-alias memory checkers)
// ---------------------------------------------------------------------

/// One `fcc-alias` sweep per linted function, shared by the four `mem-*`
/// rules — same memoisation discipline as [`RangeFactsCache`]. The
/// memory bound is unknown at lint time, so the findings are the
/// size-independent subset (`mem-oob-access` still proves negative
/// addresses; `fcc analyze --memory-words` adds the upper bound).
struct MemFactsCache(RefCell<Option<(RangeFactsKey, Rc<Vec<Diagnostic>>)>>);

impl MemFactsCache {
    fn new() -> Rc<MemFactsCache> {
        Rc::new(MemFactsCache(RefCell::new(None)))
    }

    fn diagnostics(&self, func: &Function, am: &mut AnalysisManager) -> Rc<Vec<Diagnostic>> {
        let key = (func.name.clone(), func.epoch());
        if let Some((k, diags)) = &*self.0.borrow() {
            if *k == key {
                return Rc::clone(diags);
            }
        }
        let fa = FunctionAnalysis::compute(func, am);
        let diags = Rc::new(fcc_alias::memory_diagnostics(func, &fa, None));
        *self.0.borrow_mut() = Some((key, Rc::clone(&diags)));
        diags
    }
}

/// Rules `mem-oob-access`, `mem-uninit-load`, `mem-dead-store` and
/// `mem-overlapping-store`: the `fcc-alias` memory checkers surfaced as
/// stage-aware lint findings. All warning severity, like the `range-*`
/// family — the flagged access runs (or traps, per the interpreter's
/// normative out-of-bounds rule) under the IR semantics, but almost
/// surely diverges from source intent.
pub struct MemSafetyRule {
    id: &'static str,
    description: &'static str,
    cache: Rc<MemFactsCache>,
}

impl MemSafetyRule {
    fn oob_access(cache: &Rc<MemFactsCache>) -> MemSafetyRule {
        MemSafetyRule {
            id: fcc_alias::RULE_MEM_OOB,
            description: "no load or store address is provably outside memory (every \
                          execution would trap)",
            cache: Rc::clone(cache),
        }
    }
    fn uninit_load(cache: &Rc<MemFactsCache>) -> MemSafetyRule {
        MemSafetyRule {
            id: fcc_alias::RULE_MEM_UNINIT,
            description: "no load reads a fixed word that no reachable store may write",
            cache: Rc::clone(cache),
        }
    }
    fn dead_store(cache: &Rc<MemFactsCache>) -> MemSafetyRule {
        MemSafetyRule {
            id: fcc_alias::RULE_MEM_DEAD_STORE,
            description: "no store is overwritten by a must-alias store before any \
                          possible read",
            cache: Rc::clone(cache),
        }
    }
    fn overlapping_store(cache: &Rc<MemFactsCache>) -> MemSafetyRule {
        MemSafetyRule {
            id: fcc_alias::RULE_MEM_OVERLAP,
            description: "no two adjacent stores write partially-overlapping small \
                          address windows without being provably equal",
            cache: Rc::clone(cache),
        }
    }
}

impl LintRule for MemSafetyRule {
    fn id(&self) -> &'static str {
        self.id
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn applies(&self, stage: LintStage) -> bool {
        // Alias verdicts come from the same sparse SSA fixpoints as the
        // range-* rules, with the same staging constraint.
        stage == LintStage::Ssa
    }
    fn check(&self, func: &Function, am: &mut AnalysisManager, out: &mut Vec<Diagnostic>) {
        let diags = self.cache.diagnostics(func, am);
        out.extend(diags.iter().filter(|d| d.rule == self.id).cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_function, LintStage};
    use fcc_ir::parse::parse_function;

    fn lint(src: &str, stage: LintStage) -> Vec<Diagnostic> {
        let f = parse_function(src).unwrap();
        lint_function(&f, &mut AnalysisManager::new(), stage).diagnostics
    }

    #[test]
    fn phi_liveness_flags_dead_operand() {
        // v1 is not live-out of b2: the φ in b3 names it for the b1 edge
        // only, so on the b2 edge the named value v2 is fine but we
        // corrupt it to use v1's slot via a dead self path. Simplest
        // direct corruption: operand defined on the *other* side.
        let src = "function @f(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b3
             b2:
                 v2 = const 3
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v1]
                 return v3
             }";
        let diags = lint(src, LintStage::Ssa);
        // The b2 edge operand is not dominated (strict-SSA) and not
        // live-out of b2 (liveness): both rules agree something is wrong.
        assert!(diags.iter().any(|d| d.rule == "phi-edge-dominance"));
    }

    #[test]
    fn phi_liveness_clean_on_good_phi() {
        let src = "function @f(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b3
             b2:
                 v2 = const 3
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }";
        let diags = lint(src, LintStage::Ssa);
        assert!(
            diags.iter().all(|d| d.rule != "phi-operand-liveness"),
            "{diags:?}"
        );
    }

    #[test]
    fn critical_edge_with_phi_warns() {
        // b0 -> b2 is critical (b0 branches, b2 has two preds) and b2
        // carries a φ.
        let src = "function @f(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b2
             b2:
                 v2 = phi [b0: v0], [b1: v1]
                 return v2
             }";
        let diags = lint(src, LintStage::Ssa);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "critical-edge" && d.severity == fcc_ir::Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_and_redundant_phis_warn() {
        let src = "function @f(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v1 = phi [b1: v0], [b2: v0]
                 v2 = phi [b1: v0], [b2: v0]
                 return v2
             }";
        let diags = lint(src, LintStage::Ssa);
        // v1 is dead (never used); v2 is redundant (both operands v0).
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "phi-pruning" && d.message.contains("dead phi")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "phi-pruning" && d.message.contains("redundant phi")),
            "{diags:?}"
        );
    }

    #[test]
    fn parallel_copy_swap_cycle_noted() {
        // Classic swap: on the backedge b1 -> b1 the two φs exchange
        // values.
        let src = "function @swap(1) {
             b0:
                 v0 = param 0
                 v1 = const 1
                 v2 = const 2
                 jump b1
             b1:
                 v3 = phi [b0: v1], [b1: v4]
                 v4 = phi [b0: v2], [b1: v3]
                 v5 = add v3, v4
                 v6 = lt v5, v0
                 branch v6, b1, b2
             b2:
                 return v5
             }";
        let diags = lint(src, LintStage::Ssa);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "parallel-copy" && d.message.contains("swap cycle")),
            "{diags:?}"
        );
    }

    #[test]
    fn parallel_copy_duplicate_destination_is_error() {
        // Hand-build two φs with the same destination value: the parser
        // would reject it, so construct directly.
        let mut f = fcc_ir::Function::new("dup");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let v0 = f.new_value();
        let v1 = f.new_value();
        let vd = f.new_value();
        f.append_inst(b0, InstKind::Const { imm: 1 }, Some(v0));
        f.append_inst(
            b0,
            InstKind::Branch {
                cond: v0,
                then_dst: b1,
                else_dst: b2,
            },
            None,
        );
        f.append_inst(b1, InstKind::Const { imm: 2 }, Some(v1));
        f.append_inst(b1, InstKind::Jump { dst: b2 }, None);
        f.prepend_phi(
            b2,
            vec![
                fcc_ir::PhiArg {
                    pred: b0,
                    value: v0,
                },
                fcc_ir::PhiArg {
                    pred: b1,
                    value: v1,
                },
            ],
            vd,
        );
        // Second φ writing the same destination. prepend order puts it
        // first; both φs share dst vd.
        f.prepend_phi(
            b2,
            vec![
                fcc_ir::PhiArg {
                    pred: b0,
                    value: v0,
                },
                fcc_ir::PhiArg {
                    pred: b1,
                    value: v1,
                },
            ],
            vd,
        );
        f.append_inst(b2, InstKind::Return { val: Some(vd) }, None);
        let diags = lint_function(&f, &mut AnalysisManager::new(), LintStage::Ssa).diagnostics;
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "parallel-copy" && d.message.contains("twice")),
            "{diags:?}"
        );
    }

    #[test]
    fn definite_init_catches_one_sided_def() {
        // Pre-SSA shape: v1 assigned on one arm only.
        let src = "function @f(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b3
             b2:
                 jump b3
             b3:
                 return v1
             }";
        let diags = lint(src, LintStage::Cfg);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "definite-init" && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn definite_init_accepts_both_sided_def() {
        let src = "function @f(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b3
             b2:
                 v1 = const 3
                 jump b3
             b3:
                 return v1
             }";
        let diags = lint(src, LintStage::Cfg);
        assert!(diags.iter().all(|d| d.rule != "definite-init"), "{diags:?}");
    }

    #[test]
    fn definite_init_handles_loops() {
        let src = "function @f(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 jump b1
             b1:
                 v1 = add v1, v0
                 v2 = lt v1, v0
                 branch v2, b1, b2
             b2:
                 return v1
             }";
        let diags = lint(src, LintStage::Cfg);
        assert!(diags.iter().all(|d| d.rule != "definite-init"), "{diags:?}");
    }

    #[test]
    fn dominance_forest_rule_clean_on_loops() {
        let src = "function @f(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 jump b1
             b1:
                 v2 = phi [b0: v1], [b1: v3]
                 v3 = add v2, v0
                 v4 = lt v3, v0
                 branch v4, b1, b2
             b2:
                 return v3
             }";
        let diags = lint(src, LintStage::Ssa);
        assert!(
            diags.iter().all(|d| d.rule != "dominance-forest"),
            "{diags:?}"
        );
    }

    #[test]
    fn rule_metadata_is_populated() {
        for rule in default_rules() {
            assert!(!rule.id().is_empty());
            assert!(!rule.description().is_empty());
        }
    }

    #[test]
    fn range_rules_flag_provable_hazards_as_warnings() {
        // x % 8 under x ≥ 0 is in [0, 7]: `t < 0` takes its else edge
        // only, and the divisor of the second div is provably zero.
        let src = "function @hazard(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 v2 = ge v0, v1
                 branch v2, b1, b3
             b1:
                 v3 = const 8
                 v4 = rem v0, v3
                 v5 = lt v4, v1
                 v6 = sub v3, v3
                 v7 = div v0, v6
                 branch v5, b2, b3
             b2:
                 v8 = const 111
                 jump b3
             b3:
                 return v1
             }";
        let diags = lint(src, LintStage::Ssa);
        for rule in [
            fcc_dataflow::RULE_DIV_BY_ZERO,
            fcc_dataflow::RULE_UNREACHABLE_BRANCH,
        ] {
            assert!(
                diags
                    .iter()
                    .any(|d| d.rule == rule && d.severity == fcc_ir::Severity::Warning),
                "{rule}: {diags:?}"
            );
        }
    }

    #[test]
    fn range_rules_stay_quiet_on_clean_code() {
        let src = "function @clean(1) {
             b0:
                 v0 = param 0
                 v1 = const 2
                 v2 = div v0, v1
                 v3 = const 63
                 v4 = and v2, v3
                 return v4
             }";
        let diags = lint(src, LintStage::Ssa);
        assert!(
            diags.iter().all(|d| !d.rule.starts_with("range-")),
            "{diags:?}"
        );
    }

    #[test]
    fn range_rules_skip_non_ssa_stages() {
        // Multiply-defined names: the sparse verdicts would be garbage,
        // so the rules must not apply at the Cfg/Final stages.
        let src = "function @multi(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 v1 = div v0, v1
                 return v1
             }";
        for stage in [LintStage::Cfg, LintStage::Final] {
            let diags = lint(src, stage);
            assert!(
                diags.iter().all(|d| !d.rule.starts_with("range-")),
                "{stage}: {diags:?}"
            );
        }
    }
}
