//! Property-based tests: every analysis checked against an independent,
//! naive model on randomly generated structures and CFGs.

use std::collections::HashSet;

use fcc_analysis::{BitSet, DomTree, DominanceFrontiers, Liveness, TriangularBitMatrix, UnionFind};
use fcc_ir::{Block, ControlFlowGraph, Function, InstKind, Value};
use fcc_workloads::SplitMix64;

/// Seeded-case count: the default covers CI; `--features heavy` sweeps
/// wider.
const CASES: u64 = if cfg!(feature = "heavy") { 4096 } else { 256 };

// ---------- BitSet vs HashSet ----------

#[test]
fn bitset_behaves_like_hashset() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xB1_0000 + case);
        let mut bs = BitSet::new(200);
        let mut hs: HashSet<usize> = HashSet::new();
        for _ in 0..rng.gen_range(0usize..120) {
            match rng.gen_range(0usize..5) {
                0 | 1 => {
                    let i = rng.gen_range(0usize..200);
                    assert_eq!(bs.insert(i), hs.insert(i), "case {case}");
                }
                2 | 3 => {
                    let i = rng.gen_range(0usize..200);
                    assert_eq!(bs.remove(i), hs.remove(&i), "case {case}");
                }
                _ => {
                    bs.clear();
                    hs.clear();
                }
            }
            assert_eq!(bs.count(), hs.len(), "case {case}");
        }
        let got: HashSet<usize> = bs.iter().collect();
        assert_eq!(got, hs, "case {case}");
    }
}

#[test]
fn bitset_algebra_matches_sets() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xB2_0000 + case);
        let draw = |rng: &mut SplitMix64| -> HashSet<usize> {
            (0..rng.gen_range(0usize..40))
                .map(|_| rng.gen_range(0usize..128))
                .collect()
        };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        let mk = |s: &HashSet<usize>| {
            let mut x = BitSet::new(128);
            for &e in s {
                x.insert(e);
            }
            x
        };
        let (ba, bb) = (mk(&a), mk(&b));

        let mut u = ba.clone();
        u.union_with(&bb);
        assert_eq!(
            u.iter().collect::<HashSet<_>>(),
            a.union(&b).copied().collect::<HashSet<_>>(),
            "case {case}"
        );

        let mut i = ba.clone();
        i.intersect_with(&bb);
        assert_eq!(
            i.iter().collect::<HashSet<_>>(),
            a.intersection(&b).copied().collect::<HashSet<_>>(),
            "case {case}"
        );

        let mut d = ba.clone();
        d.difference_with(&bb);
        assert_eq!(
            d.iter().collect::<HashSet<_>>(),
            a.difference(&b).copied().collect::<HashSet<_>>(),
            "case {case}"
        );

        assert_eq!(ba.intersects(&bb), !a.is_disjoint(&b), "case {case}");
    }
}

// ---------- UnionFind vs naive partition ----------

#[test]
fn unionfind_matches_naive_partition() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xB3_0000 + case);
        let n = 60;
        let mut uf = UnionFind::new(n);
        // Naive model: partition id per element, merged by relabelling.
        let mut label: Vec<usize> = (0..n).collect();
        for _ in 0..rng.gen_range(0usize..80) {
            let (a, b) = (rng.gen_range(0usize..n), rng.gen_range(0usize..n));
            uf.union(a, b);
            let (la, lb) = (label[a], label[b]);
            if la != lb {
                for l in label.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for x in 0..n {
            for y in 0..n {
                assert_eq!(uf.same(x, y), label[x] == label[y], "case {case}: {x} {y}");
            }
        }
    }
}

// ---------- Triangular matrix vs HashSet of pairs ----------

#[test]
fn bitmatrix_matches_pair_set() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xB4_0000 + case);
        let mut m = TriangularBitMatrix::new(40);
        let mut model: HashSet<(usize, usize)> = HashSet::new();
        for _ in 0..rng.gen_range(0usize..120) {
            let (a, b) = (rng.gen_range(0usize..40), rng.gen_range(0usize..40));
            m.add(a, b);
            if a != b {
                model.insert((a.min(b), a.max(b)));
            }
        }
        assert_eq!(m.count(), model.len(), "case {case}");
        for a in 0..40 {
            for b in 0..40 {
                assert_eq!(
                    m.relates(a, b),
                    model.contains(&(a.min(b), a.max(b))),
                    "case {case}: ({a}, {b})"
                );
            }
        }
    }
}

// ---------- Random CFGs for dominator / liveness checks ----------

/// Build a random function: `n` blocks, each defining a couple of values
/// and ending in a random terminator. Every value definition/use index is
/// valid; structure is otherwise arbitrary (unreachable blocks, self
/// loops, shared targets all occur).
fn random_function(seed: u64, n_blocks: usize, n_vals: usize) -> Function {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut f = Function::new(format!("r{seed}"));
    let blocks: Vec<Block> = (0..n_blocks).map(|_| f.add_block()).collect();
    for _ in 0..n_vals {
        f.new_value();
    }
    for (bi, &b) in blocks.iter().enumerate() {
        // A few defs and uses.
        for _ in 0..rng.gen_range(0..3) {
            let dst = Value::new(rng.gen_range(0..n_vals));
            match rng.gen_range(0..3) {
                0 => {
                    f.append_inst(
                        b,
                        InstKind::Const {
                            imm: rng.gen_range(-5i64..5),
                        },
                        Some(dst),
                    );
                }
                1 => {
                    let src = Value::new(rng.gen_range(0..n_vals));
                    f.append_inst(b, InstKind::Copy { src }, Some(dst));
                }
                _ => {
                    let a = Value::new(rng.gen_range(0..n_vals));
                    let c = Value::new(rng.gen_range(0..n_vals));
                    f.append_inst(
                        b,
                        InstKind::Binary {
                            op: fcc_ir::BinOp::Add,
                            a,
                            b: c,
                        },
                        Some(dst),
                    );
                }
            }
        }
        let term = if bi + 1 == n_blocks {
            2
        } else {
            rng.gen_range(0..3)
        };
        match term {
            0 => {
                let dst = blocks[rng.gen_range(0..n_blocks)];
                f.append_inst(b, InstKind::Jump { dst }, None);
            }
            1 => {
                let cond = Value::new(rng.gen_range(0..n_vals));
                let t = blocks[rng.gen_range(0..n_blocks)];
                let e = blocks[rng.gen_range(0..n_blocks)];
                f.append_inst(
                    b,
                    InstKind::Branch {
                        cond,
                        then_dst: t,
                        else_dst: e,
                    },
                    None,
                );
            }
            _ => {
                let v = Value::new(rng.gen_range(0..n_vals));
                f.append_inst(b, InstKind::Return { val: Some(v) }, None);
            }
        }
    }
    f
}

/// Naive dominance: `a` dominates `b` iff removing `a` disconnects `b`
/// from the entry (checked by DFS avoiding `a`).
fn naive_dominates(cfg: &ControlFlowGraph, entry: Block, a: Block, b: Block) -> bool {
    if !cfg.is_reachable(b) || !cfg.is_reachable(a) {
        return false;
    }
    if a == b {
        return true;
    }
    if b == entry {
        return false; // only the entry dominates the entry
    }
    // DFS from entry avoiding a; if b reached, a does not dominate b.
    let mut seen = HashSet::new();
    let mut stack = vec![entry];
    if entry == a {
        return true; // entry dominates everything reachable
    }
    seen.insert(entry);
    while let Some(x) = stack.pop() {
        for &s in cfg.succs(x) {
            if s == a || seen.contains(&s) {
                continue;
            }
            if s == b {
                return false;
            }
            seen.insert(s);
            stack.push(s);
        }
    }
    true
}

#[test]
fn dominators_match_naive_on_random_cfgs() {
    for seed in 0..120u64 {
        let f = random_function(seed, 3 + (seed as usize % 8), 6);
        let cfg = ControlFlowGraph::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let blocks: Vec<Block> = f.blocks().collect();
        for &a in &blocks {
            for &b in &blocks {
                if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
                    assert!(!dt.dominates(a, b), "seed {seed}: unreachable {a}->{b}");
                    continue;
                }
                let expect = naive_dominates(&cfg, f.entry(), a, b);
                assert_eq!(
                    dt.dominates(a, b),
                    expect,
                    "seed {seed}: dominates({a},{b})"
                );
            }
        }
    }
}

#[test]
fn dominance_frontiers_match_definition() {
    // b' ∈ DF(b) iff b dominates a predecessor of b' but not strictly b'.
    for seed in 0..120u64 {
        let f = random_function(seed, 3 + (seed as usize % 8), 6);
        let cfg = ControlFlowGraph::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let dfs = DominanceFrontiers::compute(&cfg, &dt);
        let blocks: Vec<Block> = f.blocks().filter(|&b| cfg.is_reachable(b)).collect();
        for &b in &blocks {
            let frontier: HashSet<Block> = dfs.frontier(b).iter().copied().collect();
            for &j in &blocks {
                let in_df = cfg.preds(j).iter().any(|&p| dt.dominates(b, p))
                    && !dt.strictly_dominates(b, j);
                assert_eq!(frontier.contains(&j), in_df, "seed {seed}: DF({b}) vs {j}");
            }
        }
    }
}

/// Naive liveness for a single value: `v` is live-in at `b` iff some path
/// from the start of `b` reaches a (φ-excluded) use of `v` with no
/// intervening definition. Computed by backward BFS over blocks.
fn naive_live_in(f: &Function, cfg: &ControlFlowGraph, v: Value, b: Block) -> bool {
    // Within b itself: scan forward.
    for &inst in f.block_insts(b) {
        let data = f.inst(inst);
        let mut used = false;
        if !data.kind.is_phi() {
            data.kind.for_each_use(|u| used |= u == v);
        }
        if used {
            return true;
        }
        if data.dst == Some(v) {
            return false;
        }
    }
    // Otherwise: v live-out of b along some successor path.
    let mut seen = HashSet::new();
    let mut stack: Vec<Block> = cfg.succs(b).to_vec();
    // φ uses on the edge b -> s count as live-out of b.
    for &s in cfg.succs(b) {
        for phi in f.block_phis(s) {
            if let InstKind::Phi { args } = &f.inst(phi).kind {
                if args.iter().any(|a| a.pred == b && a.value == v) {
                    return true;
                }
            }
        }
    }
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        let mut killed = false;
        let mut used = false;
        for &inst in f.block_insts(s) {
            let data = f.inst(inst);
            if !data.kind.is_phi() {
                data.kind.for_each_use(|u| used |= u == v);
            }
            if used {
                break;
            }
            if data.dst == Some(v) {
                killed = true;
                break;
            }
        }
        if used {
            return true;
        }
        if killed {
            continue;
        }
        for &t in cfg.succs(s) {
            for phi in f.block_phis(t) {
                if let InstKind::Phi { args } = &f.inst(phi).kind {
                    if args.iter().any(|a| a.pred == s && a.value == v) {
                        return true;
                    }
                }
            }
            stack.push(t);
        }
    }
    false
}

#[test]
fn liveness_matches_naive_path_search() {
    for seed in 200..280u64 {
        let f = random_function(seed, 3 + (seed as usize % 6), 5);
        let cfg = ControlFlowGraph::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        for b in f.blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for vi in 0..f.num_values() {
                let v = Value::new(vi);
                assert_eq!(
                    live.is_live_in(v, b),
                    naive_live_in(&f, &cfg, v, b),
                    "seed {seed}: live_in({v}, {b})"
                );
            }
        }
    }
}

#[test]
fn preorder_brackets_are_consistent_on_random_cfgs() {
    for seed in 300..360u64 {
        let f = random_function(seed, 4 + (seed as usize % 10), 4);
        let cfg = ControlFlowGraph::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        for b in f.blocks() {
            if !dt.is_reachable(b) {
                continue;
            }
            // max_preorder brackets must nest: child's bracket inside
            // parent's.
            for &c in dt.children(b) {
                assert!(dt.preorder(c) > dt.preorder(b), "seed {seed}");
                assert!(dt.max_preorder(c) <= dt.max_preorder(b), "seed {seed}");
            }
        }
    }
}
