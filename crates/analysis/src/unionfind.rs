//! Disjoint-set union-find with union by rank and path compression.
//!
//! This is the `O(n·α(n))` workhorse of the paper's algorithm: φ-node
//! destinations and arguments are unioned into candidate congruence
//! classes, and the classical Chaitin/Briggs live-range identification
//! (`fcc-regalloc`) uses the same structure to join φ-webs into live
//! ranges. The inverse-Ackermann bound is why the overall SSA-to-CFG
//! conversion is `O(n·α(n))` (Section 3.7).

/// A union-find structure over the dense universe `0..len`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Create `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len < u32::MAX as usize);
        UnionFind {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
        }
    }

    /// Number of elements in the universe.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Add a fresh singleton element and return its index. The paper's
    /// algorithm needs this when breaking an interference mints a new name
    /// mid-run.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i as u32);
        self.rank.push(0);
        i
    }

    /// The canonical representative of `x`'s set, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Compress the path.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Read-only find (no compression); useful when `self` is shared.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Union the sets containing `a` and `b`; returns the representative
    /// of the merged set.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        if self.rank[ra] == self.rank[rb] {
            self.rank[big] += 1;
        }
        big
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Detach `x` into a fresh singleton, leaving the rest of its old set
    /// intact, **provided `x` is not its set's representative**. Breaking a
    /// congruence class in the paper's algorithm removes one member; we
    /// implement that by re-pointing the member at itself. Returns `false`
    /// (and does nothing) if `x` is a representative some other element
    /// might point at — callers avoid this by never detaching reps.
    pub fn detach_non_rep(&mut self, x: usize) -> bool {
        if self.find(x) == x {
            return false;
        }
        self.parent[x] = x as u32;
        self.rank[x] = 0;
        true
    }

    /// Group all elements by representative: returns `(reps, groups)`
    /// where `groups[i]` lists the members of `reps[i]`'s set, each group
    /// in increasing element order. Singletons are included.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_rep: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_rep.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_rep.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }

    /// Heap bytes used.
    pub fn bytes(&self) -> usize {
        self.parent.capacity() * 4 + self.rank.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_find_themselves() {
        let mut uf = UnionFind::new(5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_makes_same() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        uf.union(1, 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 5));
    }

    #[test]
    fn union_returns_representative() {
        let mut uf = UnionFind::new(4);
        let r = uf.union(0, 1);
        assert_eq!(uf.find(0), r);
        assert_eq!(uf.find(1), r);
        let r2 = uf.union(1, 2);
        assert_eq!(uf.find(2), r2);
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(i - 1, i);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn push_adds_singleton() {
        let mut uf = UnionFind::new(2);
        let x = uf.push();
        assert_eq!(x, 2);
        assert_eq!(uf.find(x), x);
        uf.union(x, 0);
        assert!(uf.same(x, 0));
    }

    #[test]
    fn detach_non_rep_splits_member_out() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(0, 2);
        let rep = uf.find(0);
        // Pick a member that isn't the representative.
        let member = (0..3).find(|&x| x != rep).unwrap();
        assert!(uf.detach_non_rep(member));
        assert_eq!(uf.find(member), member);
        // The remaining two stay together.
        let others: Vec<usize> = (0..3).filter(|&x| x != member).collect();
        assert!(uf.same(others[0], others[1]));
        assert!(!uf.same(member, others[0]));
    }

    #[test]
    fn detach_rep_is_refused() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        let rep = uf.find(0);
        assert!(!uf.detach_non_rep(rep));
        assert!(uf.same(0, 1), "refused detach must not corrupt the set");
    }

    #[test]
    fn groups_partition_universe() {
        let mut uf = UnionFind::new(7);
        uf.union(0, 3);
        uf.union(3, 5);
        uf.union(1, 2);
        let groups = uf.groups();
        assert_eq!(groups.len(), 4); // {0,3,5} {1,2} {4} {6}
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert!(groups.iter().any(|g| g == &vec![0, 3, 5]));
        assert!(groups.iter().any(|g| g == &vec![1, 2]));
    }
}
