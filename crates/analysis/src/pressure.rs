//! Per-program-point register pressure.
//!
//! Pressure at a program point is the number of values simultaneously
//! live there — the number of registers any allocation must hold at that
//! point. The maximum over a whole function, **MaxLive**, is the central
//! quantity of register-constrained allocation: under strict SSA the
//! interference graph is chordal, so MaxLive equals the chromatic number
//! and is a *certificate* of colourability, not a heuristic (see
//! `fcc-pressure` for the certifier that proves this per function).
//!
//! The module exposes two layers:
//!
//! * [`for_each_point`] — the canonical backward walk that enumerates
//!   every program point of a function together with its live set. The
//!   walk is shared by the [`Pressure`] analysis, the interference
//!   builder in `fcc-pressure`, and the allocation feasibility auditor,
//!   so "a program point" means the same thing everywhere.
//! * [`Pressure`] — per-block maximum pressure plus the function-level
//!   MaxLive, cached by `AnalysisManager::pressure`.
//!
//! Point conventions (matching [`crate::liveness::Liveness`]):
//!
//! * φ-arguments are uses *on the incoming edge*: they count at the
//!   predecessor's [`Point::Exit`], never inside the φ's own block.
//! * φ-destinations are defined in parallel at the top of their block.
//! * A dead definition still occupies a register at the instant it is
//!   written: the walk visits a dedicated [`Point::DeadDef`] with the
//!   destination force-inserted so pressure accounts for it.

use fcc_ir::{Block, ControlFlowGraph, Function, Inst, Value};

use crate::bitset::BitSet;
use crate::liveness::Liveness;

/// A program point of the backward walk, paired by [`for_each_point`]
/// with the set of values live there.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Point {
    /// After the block's terminator: the block's live-out set (φ-args of
    /// successors included, since they are uses on the outgoing edges).
    Exit(Block),
    /// Immediately before a (non-φ) instruction: everything live
    /// between the previous instruction and this one.
    Before(Block, Inst),
    /// Just after a dead definition: the destination is written and
    /// occupies a register even though nothing reads it. Only visited
    /// when the destination is not live afterwards.
    DeadDef(Block, Inst),
    /// Just after the block's φ-destinations are defined (in parallel).
    /// Only visited when at least one φ-destination is dead — otherwise
    /// the point's set equals the first [`Point::Before`] of the block.
    PhiDefs(Block),
}

impl Point {
    /// The block this point belongs to.
    pub fn block(self) -> Block {
        match self {
            Point::Exit(b) | Point::Before(b, _) | Point::DeadDef(b, _) | Point::PhiDefs(b) => b,
        }
    }
}

/// Enumerate every program point of `func` (reachable blocks only) with
/// its live set, walking each block backward from `live.live_out`.
///
/// `live` may be either liveness flavour: `compute_ssa` for strict SSA
/// input, or the dataflow `compute` for arbitrary (e.g. post-destruction)
/// code. The set passed to `visit` is reused between calls — copy out
/// what must be kept.
pub fn for_each_point(
    func: &Function,
    cfg: &ControlFlowGraph,
    live: &Liveness,
    mut visit: impl FnMut(Point, &BitSet),
) {
    let mut set = BitSet::new(func.num_values());
    for b in func.blocks() {
        if !cfg.is_reachable(b) {
            continue;
        }
        set.clear();
        set.union_with(live.live_out(b));
        visit(Point::Exit(b), &set);

        let insts = func.block_insts(b);
        let mut phi_end = 0;
        while phi_end < insts.len() && func.inst(insts[phi_end]).kind.is_phi() {
            phi_end += 1;
        }
        for &i in insts[phi_end..].iter().rev() {
            let data = func.inst(i);
            if let Some(d) = data.dst {
                if !set.contains(d.index()) {
                    // Dead definition: it still occupies a register at
                    // the instant it is written.
                    set.insert(d.index());
                    visit(Point::DeadDef(b, i), &set);
                }
                set.remove(d.index());
            }
            data.kind.for_each_use(|u| {
                set.insert(u.index());
            });
            visit(Point::Before(b, i), &set);
        }
        if phi_end > 0 {
            // φ-destinations are parallel definitions at the block's
            // top. Dead ones are absent from the set here but still
            // occupy registers at the definition point.
            let mut any_dead = false;
            for &i in &insts[..phi_end] {
                if let Some(d) = func.inst(i).dst {
                    any_dead |= set.insert(d.index());
                }
            }
            if any_dead {
                visit(Point::PhiDefs(b), &set);
            }
        }
    }
}

/// Per-block and per-function maximum register pressure.
///
/// Compute with [`Pressure::compute`], or pull the cached copy from
/// `AnalysisManager::pressure` (strict-SSA liveness flavour).
#[derive(Clone, Debug)]
pub struct Pressure {
    block_max: Vec<u32>,
    maxlive: u32,
    max_block: Option<Block>,
    points: usize,
}

impl Pressure {
    /// Walk every program point of `func` and record the pressure maxima.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph, live: &Liveness) -> Pressure {
        let mut block_max = vec![0u32; func.num_blocks()];
        let mut points = 0usize;
        for_each_point(func, cfg, live, |p, set| {
            points += 1;
            let c = set.count() as u32;
            let slot = &mut block_max[p.block().index()];
            if c > *slot {
                *slot = c;
            }
        });
        let mut maxlive = 0u32;
        let mut max_block = None;
        for b in func.blocks() {
            let c = block_max[b.index()];
            if c > maxlive {
                maxlive = c;
                max_block = Some(b);
            }
        }
        Pressure {
            block_max,
            maxlive,
            max_block,
            points,
        }
    }

    /// Maximum pressure anywhere in the function.
    pub fn maxlive(&self) -> u32 {
        self.maxlive
    }

    /// First block (in layout order) that attains [`Pressure::maxlive`].
    /// `None` only for functions with no reachable points.
    pub fn max_block(&self) -> Option<Block> {
        self.max_block
    }

    /// Maximum pressure within `b` (0 for unreachable blocks).
    pub fn block_max(&self, b: Block) -> u32 {
        self.block_max.get(b.index()).copied().unwrap_or(0)
    }

    /// Number of program points visited.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Approximate heap footprint, for `AnalysisManager` accounting.
    pub fn bytes(&self) -> usize {
        self.block_max.capacity() * std::mem::size_of::<u32>()
    }
}

/// Values live at a specific point, materialised as a sorted `Vec` —
/// convenience for diagnostics and tests.
pub fn live_values(set: &BitSet) -> Vec<Value> {
    set.iter().map(Value::new).collect()
}
