//! Dominator tree, dominance frontiers, and O(1) dominance queries.
//!
//! Immediate dominators are computed with the Cooper–Harvey–Kennedy
//! iterative algorithm ("A Simple, Fast Dominance Algorithm") — fittingly,
//! by the same research group as the paper being reproduced. On top of the
//! tree we compute:
//!
//! * **preorder / max-preorder numbering** — a depth-first numbering where
//!   each node also records the largest preorder number among its
//!   descendants. `a` dominates `b` iff
//!   `preorder(a) <= preorder(b) <= maxpreorder(a)`, a constant-time test
//!   the paper attributes to Tarjan and uses both for interference checks
//!   and for dominance-forest construction (Figure 1);
//! * **dominance frontiers** — for φ placement during SSA construction.

use fcc_ir::{Block, ControlFlowGraph, Function, SecondaryMap};

/// Dominator tree plus preorder numbering for one function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DomTree {
    idom: SecondaryMap<Block, Option<Block>>,
    children: SecondaryMap<Block, Vec<Block>>,
    preorder: SecondaryMap<Block, u32>,
    maxpreorder: SecondaryMap<Block, u32>,
    /// Blocks in dominator-tree preorder.
    preorder_seq: Vec<Block>,
    entry: Block,
}

impl DomTree {
    /// Compute the dominator tree of `func` using `cfg`.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph) -> Self {
        let entry = func.entry();
        let postorder = cfg.postorder();
        // Map each block to its postorder index.
        let mut po_idx: SecondaryMap<Block, u32> = SecondaryMap::new();
        for (i, &b) in postorder.iter().enumerate() {
            po_idx[b] = i as u32;
        }

        let mut idom: SecondaryMap<Block, Option<Block>> = SecondaryMap::new();
        idom[entry] = Some(entry);

        // Iterate to fixpoint in reverse postorder.
        let mut changed = true;
        while changed {
            changed = false;
            for &b in postorder.iter().rev() {
                if b == entry {
                    continue;
                }
                // Pick the first processed predecessor as the seed.
                let mut new_idom: Option<Block> = None;
                for &p in cfg.preds(b) {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(p, cur, &idom, &po_idx),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Children lists (entry's self-loop excluded).
        let mut children: SecondaryMap<Block, Vec<Block>> = SecondaryMap::new();
        for &b in postorder {
            if b == entry {
                continue;
            }
            if let Some(p) = idom[b] {
                children[p].push(b);
            }
        }
        // Deterministic child order: by block index.
        for &b in postorder {
            children[b].sort_unstable();
        }

        // Depth-first preorder numbering with max-descendant numbers
        // (computed "on the way up", exactly as in the paper's Figure 1
        // preamble).
        let mut preorder: SecondaryMap<Block, u32> = SecondaryMap::new();
        let mut maxpreorder: SecondaryMap<Block, u32> = SecondaryMap::new();
        let mut preorder_seq = Vec::with_capacity(postorder.len());
        let mut counter = 0u32;
        let mut stack: Vec<(Block, usize)> = vec![(entry, 0)];
        preorder[entry] = 0;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next == 0 {
                preorder[b] = counter;
                preorder_seq.push(b);
                counter += 1;
            }
            if *next < children[b].len() {
                let c = children[b][*next];
                *next += 1;
                stack.push((c, 0));
            } else {
                maxpreorder[b] = counter - 1;
                stack.pop();
            }
        }

        DomTree {
            idom,
            children,
            preorder,
            maxpreorder,
            preorder_seq,
            entry,
        }
    }

    /// The immediate dominator of `b`, or `None` for the entry block and
    /// unreachable blocks.
    pub fn idom(&self, b: Block) -> Option<Block> {
        if b == self.entry {
            None
        } else {
            self.idom[b]
        }
    }

    /// Whether `b` is reachable (and thus in the tree).
    pub fn is_reachable(&self, b: Block) -> bool {
        b == self.entry || self.idom[b].is_some()
    }

    /// The children of `b` in the dominator tree, in block order.
    pub fn children(&self, b: Block) -> &[Block] {
        &self.children[b]
    }

    /// `a` dominates `b` (reflexively), in O(1) via preorder numbering.
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let pa = self.preorder[a];
        let pb = self.preorder[b];
        pa <= pb && pb <= self.maxpreorder[a]
    }

    /// `a` strictly dominates `b`, in O(1).
    pub fn strictly_dominates(&self, a: Block, b: Block) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The depth-first preorder number of `b` in the dominator tree.
    pub fn preorder(&self, b: Block) -> u32 {
        self.preorder[b]
    }

    /// The largest preorder number among `b` and its dominator-tree
    /// descendants.
    pub fn max_preorder(&self, b: Block) -> u32 {
        self.maxpreorder[b]
    }

    /// Blocks in dominator-tree preorder (entry first).
    pub fn preorder_seq(&self) -> &[Block] {
        &self.preorder_seq
    }

    /// Heap bytes used.
    pub fn bytes(&self) -> usize {
        self.idom.bytes()
            + self.children.bytes()
            + self.preorder.bytes()
            + self.maxpreorder.bytes()
            + self.preorder_seq.capacity() * std::mem::size_of::<Block>()
    }
}

fn intersect(
    mut a: Block,
    mut b: Block,
    idom: &SecondaryMap<Block, Option<Block>>,
    po_idx: &SecondaryMap<Block, u32>,
) -> Block {
    while a != b {
        while po_idx[a] < po_idx[b] {
            a = idom[a].expect("processed block has idom");
        }
        while po_idx[b] < po_idx[a] {
            b = idom[b].expect("processed block has idom");
        }
    }
    a
}

/// Dominance frontiers: `df(b)` is the set of blocks where `b`'s dominance
/// ends — exactly where SSA construction must place φ-nodes for
/// definitions in `b` (Cytron et al.).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DominanceFrontiers {
    df: SecondaryMap<Block, Vec<Block>>,
}

impl DominanceFrontiers {
    /// Compute dominance frontiers with the Cooper–Harvey–Kennedy
    /// join-node walk: for each block with ≥2 predecessors, walk each
    /// predecessor's idom chain up to the block's idom.
    pub fn compute(cfg: &ControlFlowGraph, dt: &DomTree) -> Self {
        let mut df: SecondaryMap<Block, Vec<Block>> = SecondaryMap::new();
        let entry = cfg.postorder().last().copied();
        for &b in cfg.postorder() {
            let preds = cfg.preds(b);
            // Join nodes, plus the entry whenever it has any predecessor
            // at all: a loop back to the entry makes `entry ∈ DF(entry)`
            // (nothing strictly dominates the entry), a case the usual
            // two-predecessor shortcut misses.
            if preds.len() < 2 && (Some(b) != entry || preds.is_empty()) {
                continue;
            }
            // The entry block can itself be a join (a loop back to the
            // start): it has no idom, so the runners walk all the way to
            // the root, entry included — matching the definition, under
            // which nothing strictly dominates the entry.
            let stop = dt.idom(b);
            let mut seen_pred = Vec::new();
            for &p in preds {
                if seen_pred.contains(&p) {
                    continue; // duplicate edge
                }
                seen_pred.push(p);
                let mut runner = Some(p);
                while let Some(r) = runner {
                    if Some(r) == stop {
                        break;
                    }
                    if !df[r].contains(&b) {
                        df[r].push(b);
                    }
                    runner = dt.idom(r);
                }
            }
        }
        DominanceFrontiers { df }
    }

    /// The dominance frontier of `b`.
    pub fn frontier(&self, b: Block) -> &[Block] {
        &self.df[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;

    fn analyse(text: &str) -> (Function, ControlFlowGraph, DomTree) {
        let f = parse_function(text).unwrap();
        let cfg = ControlFlowGraph::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        (f, cfg, dt)
    }

    // The classic CHK paper example is a 5-node graph; we use the shape
    // from Figure 2 of "A Simple, Fast Dominance Algorithm".
    const DIAMOND_LOOP: &str = "
        function @g(0) {
        b0:
            v0 = const 1
            branch v0, b1, b2
        b1:
            jump b3
        b2:
            jump b3
        b3:
            branch v0, b1, b4
        b4:
            return
        }";

    #[test]
    fn idoms_of_diamond_with_backedge() {
        let (_, _, dt) = analyse(DIAMOND_LOOP);
        let b = |i| Block::new(i);
        assert_eq!(dt.idom(b(0)), None);
        assert_eq!(dt.idom(b(1)), Some(b(0)));
        assert_eq!(dt.idom(b(2)), Some(b(0)));
        assert_eq!(dt.idom(b(3)), Some(b(0)));
        assert_eq!(dt.idom(b(4)), Some(b(3)));
    }

    #[test]
    fn dominates_matches_idom_chains() {
        let (_, _, dt) = analyse(DIAMOND_LOOP);
        let b = |i| Block::new(i);
        assert!(dt.dominates(b(0), b(4)));
        assert!(dt.dominates(b(3), b(4)));
        assert!(!dt.dominates(b(1), b(3)));
        assert!(!dt.dominates(b(4), b(3)));
        assert!(dt.dominates(b(2), b(2)));
        assert!(!dt.strictly_dominates(b(2), b(2)));
        assert!(dt.strictly_dominates(b(0), b(1)));
    }

    #[test]
    fn preorder_brackets_descendants() {
        let (f, _, dt) = analyse(DIAMOND_LOOP);
        // Cross-check the O(1) test against the naive idom-chain walk for
        // every pair.
        for a in f.blocks() {
            for b in f.blocks() {
                let mut cur = Some(b);
                let mut naive = false;
                while let Some(c) = cur {
                    if c == a {
                        naive = true;
                        break;
                    }
                    cur = dt.idom(c);
                }
                assert_eq!(dt.dominates(a, b), naive, "dominates({a},{b})");
            }
        }
    }

    #[test]
    fn preorder_seq_starts_at_entry_and_is_dense() {
        let (f, _, dt) = analyse(DIAMOND_LOOP);
        let seq = dt.preorder_seq();
        assert_eq!(seq[0], f.entry());
        let mut nums: Vec<u32> = seq.iter().map(|&b| dt.preorder(b)).collect();
        nums.sort_unstable();
        assert_eq!(nums, (0..seq.len() as u32).collect::<Vec<_>>());
        for &b in seq {
            assert!(dt.max_preorder(b) >= dt.preorder(b));
        }
    }

    #[test]
    fn linear_chain_dominators() {
        let (_, _, dt) = analyse(
            "function @lin(0) {
             b0:
                 jump b1
             b1:
                 jump b2
             b2:
                 return
             }",
        );
        let b = |i| Block::new(i);
        assert_eq!(dt.idom(b(2)), Some(b(1)));
        assert_eq!(dt.idom(b(1)), Some(b(0)));
        assert!(dt.dominates(b(0), b(2)));
        assert_eq!(dt.children(b(0)), &[b(1)]);
    }

    #[test]
    fn unreachable_block_not_in_tree() {
        let (_, _, dt) = analyse(
            "function @u(0) {
             b0:
                 return
             b1:
                 jump b0
             }",
        );
        assert!(!dt.is_reachable(Block::new(1)));
        assert!(!dt.dominates(Block::new(0), Block::new(1)));
    }

    #[test]
    fn diamond_frontiers() {
        let (_, cfg, dt) = analyse(DIAMOND_LOOP);
        let dfs = DominanceFrontiers::compute(&cfg, &dt);
        let b = |i| Block::new(i);
        // b1 and b2 meet at b3; b3's backedge to b1 puts b1 in DF(b3) and,
        // via the walk to idom(b1)=b0, also in DF(b3)'s chain.
        assert_eq!(dfs.frontier(b(1)), &[b(3)]);
        assert_eq!(dfs.frontier(b(2)), &[b(3)]);
        assert!(dfs.frontier(b(3)).contains(&b(1)));
        assert!(dfs.frontier(b(0)).is_empty());
    }

    #[test]
    fn self_loop_frontier_contains_itself() {
        let (_, cfg, dt) = analyse(
            "function @s(0) {
             b0:
                 v0 = const 1
                 jump b1
             b1:
                 branch v0, b1, b2
             b2:
                 return
             }",
        );
        let dfs = DominanceFrontiers::compute(&cfg, &dt);
        assert!(dfs.frontier(Block::new(1)).contains(&Block::new(1)));
    }
}
