//! Natural-loop detection and per-block loop-nesting depth.
//!
//! The Chaitin/Briggs coalescer in `fcc-regalloc` orders copies by loop
//! depth ("tries to remove copies out of innermost loops first", Section
//! 4.3), so it needs to know how deeply nested each block is. Loops are
//! the classical *natural loops* of back edges `n → h` where `h`
//! dominates `n`; the loop body is everything that reaches `n` without
//! passing through `h`.

use crate::domtree::DomTree;
use fcc_ir::{Block, ControlFlowGraph, SecondaryMap};

/// Loop nesting information for one function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopNesting {
    depth: SecondaryMap<Block, u32>,
    headers: Vec<Block>,
}

impl LoopNesting {
    /// Detect natural loops and compute nesting depths.
    pub fn compute(cfg: &ControlFlowGraph, dt: &DomTree) -> Self {
        let mut depth: SecondaryMap<Block, u32> = SecondaryMap::new();
        let mut headers: Vec<Block> = Vec::new();
        // Bodies per header, merged across multiple back edges to the same
        // header.
        let mut body_of: std::collections::HashMap<Block, Vec<Block>> =
            std::collections::HashMap::new();

        for &n in cfg.postorder() {
            for &h in cfg.succs(n) {
                if !dt.dominates(h, n) {
                    continue; // not a back edge
                }
                let body = body_of.entry(h).or_default();
                if !headers.contains(&h) {
                    headers.push(h);
                }
                // Walk predecessors backward from n, stopping at h.
                let mut stack = vec![n];
                let in_body = |b: Block, body: &mut Vec<Block>| {
                    if b != h && !body.contains(&b) {
                        body.push(b);
                        true
                    } else {
                        false
                    }
                };
                if in_body(n, body) {
                    while let Some(m) = stack.pop() {
                        for &p in cfg.preds(m) {
                            if p != h && !body.contains(&p) {
                                body.push(p);
                                stack.push(p);
                            }
                        }
                    }
                } else if n == h {
                    // Self loop: body is just the header.
                }
            }
        }

        // Depth = number of distinct loops containing the block (headers
        // count as members of their own loop).
        for (h, body) in &body_of {
            depth[*h] += 1;
            for &b in body {
                depth[b] += 1;
            }
        }

        headers.sort_unstable();
        LoopNesting { depth, headers }
    }

    /// The loop-nesting depth of `block` (0 = not in any loop).
    pub fn depth(&self, block: Block) -> u32 {
        self.depth[block]
    }

    /// Loop header blocks, in block order.
    pub fn headers(&self) -> &[Block] {
        &self.headers
    }

    /// Approximate heap footprint, in bytes.
    pub fn bytes(&self) -> usize {
        self.depth.bytes() + self.headers.capacity() * std::mem::size_of::<Block>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;

    fn nesting(text: &str) -> LoopNesting {
        let f = parse_function(text).unwrap();
        let cfg = ControlFlowGraph::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        LoopNesting::compute(&cfg, &dt)
    }

    #[test]
    fn straightline_has_depth_zero() {
        let n = nesting(
            "function @s(0) {
             b0:
                 jump b1
             b1:
                 return
             }",
        );
        assert_eq!(n.depth(Block::new(0)), 0);
        assert_eq!(n.depth(Block::new(1)), 0);
        assert!(n.headers().is_empty());
    }

    #[test]
    fn single_loop_depth_one() {
        let n = nesting(
            "function @l(0) {
             b0:
                 v0 = const 1
                 jump b1
             b1:
                 branch v0, b1, b2
             b2:
                 return
             }",
        );
        assert_eq!(n.depth(Block::new(0)), 0);
        assert_eq!(n.depth(Block::new(1)), 1);
        assert_eq!(n.depth(Block::new(2)), 0);
        assert_eq!(n.headers(), &[Block::new(1)]);
    }

    #[test]
    fn nested_loops_depth_two() {
        // b1 is the outer header; b2/b3 form the inner loop.
        let n = nesting(
            "function @n(0) {
             b0:
                 v0 = const 1
                 jump b1
             b1:
                 jump b2
             b2:
                 branch v0, b2, b3
             b3:
                 branch v0, b1, b4
             b4:
                 return
             }",
        );
        assert_eq!(n.depth(Block::new(0)), 0);
        assert_eq!(n.depth(Block::new(1)), 1);
        assert_eq!(n.depth(Block::new(2)), 2, "inner loop body is depth 2");
        assert_eq!(n.depth(Block::new(3)), 1);
        assert_eq!(n.depth(Block::new(4)), 0);
        assert_eq!(n.headers().len(), 2);
    }

    #[test]
    fn two_backedges_one_header_count_once() {
        let n = nesting(
            "function @t(0) {
             b0:
                 v0 = const 1
                 jump b1
             b1:
                 branch v0, b2, b3
             b2:
                 jump b1
             b3:
                 branch v0, b1, b4
             b4:
                 return
             }",
        );
        // One loop (header b1) even though it has two back edges.
        assert_eq!(n.headers(), &[Block::new(1)]);
        assert_eq!(n.depth(Block::new(1)), 1);
        assert_eq!(n.depth(Block::new(2)), 1);
        assert_eq!(n.depth(Block::new(3)), 1);
    }
}
