//! Process-global fault-injection registry.
//!
//! The fault-tolerance layer in `fcc-driver` is only trustworthy if every
//! rung of its recovery ladder is exercised by a *real* injected fault, in
//! the *real* code path — not by a mock. This module holds the armed
//! injections; the instrumentation hooks (`PhaseTimer::start`, the pass
//! manager, the dataflow solver) query it at their entry points. The
//! registry lives here, in the lowest shared crate, because the solver in
//! `fcc-dataflow` must be able to observe the spin injection and cannot
//! depend on `fcc-opt` (which depends on it). `fcc_opt::fault` re-exports
//! this surface and adds the `Function`-mutating corruption injection.
//!
//! All flags are process-global (the driver's worker pool spans threads),
//! so tests that arm them must serialise on a lock and disarm on exit —
//! see `tests/fault_tolerance.rs`. The fast path is a single relaxed
//! atomic load: with nothing armed, [`maybe_panic`] and friends cost one
//! branch.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Count of armed injections; zero means every query short-circuits.
static ARMED: AtomicUsize = AtomicUsize::new(0);

static PANIC_IN: Mutex<Option<String>> = Mutex::new(None);
static SOLVER_SPIN: AtomicBool = AtomicBool::new(false);
static VIOLATE_AFTER: Mutex<Option<String>> = Mutex::new(None);

fn retarget(slot: &Mutex<Option<String>>, pass: Option<&str>) {
    let mut guard = slot.lock().unwrap();
    let was = guard.is_some();
    *guard = pass.map(str::to_string);
    match (was, pass.is_some()) {
        (false, true) => {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
        (true, false) => {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
        _ => {}
    }
}

fn matches(slot: &Mutex<Option<String>>, label: &str) -> bool {
    slot.lock().unwrap().as_deref() == Some(label)
}

/// Arm (or with `None` disarm) a panic at entry to the named pass/phase.
pub fn inject_panic_in(pass: Option<&str>) {
    retarget(&PANIC_IN, pass);
}

/// Arm or disarm an infinite busy-loop at entry to the dataflow solver.
/// Only a fuel budget bounds it — that is the point.
pub fn inject_solver_spin(on: bool) {
    if SOLVER_SPIN.swap(on, Ordering::SeqCst) != on {
        if on {
            ARMED.fetch_add(1, Ordering::SeqCst);
        } else {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Arm (or with `None` disarm) an IR corruption applied right after the
/// named pass runs (the corruption itself lives in `fcc_opt::fault`,
/// which can see `Function`).
pub fn inject_verifier_violation_after(pass: Option<&str>) {
    retarget(&VIOLATE_AFTER, pass);
}

/// Disarm everything. Test teardown convenience.
pub fn clear_injections() {
    inject_panic_in(None);
    inject_solver_spin(false);
    inject_verifier_violation_after(None);
}

/// True while any injection is armed (one relaxed load).
pub fn any_armed() -> bool {
    ARMED.load(Ordering::Relaxed) != 0
}

/// Hook: panic if a panic injection targets `label`.
pub fn maybe_panic(label: &str) {
    if any_armed() && matches(&PANIC_IN, label) {
        panic!("injected panic in pass '{label}'");
    }
}

/// Hook: should the dataflow solver spin forever?
pub fn solver_spin() -> bool {
    any_armed() && SOLVER_SPIN.load(Ordering::Relaxed)
}

/// Hook: is `label` the pass after which the IR should be corrupted?
pub fn violation_target(label: &str) -> bool {
    any_armed() && matches(&VIOLATE_AFTER, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole registry: the flags are process-global
    // and tests in one binary run concurrently.
    #[test]
    fn arming_and_disarming_round_trips() {
        assert!(!any_armed());
        assert!(!solver_spin());

        inject_panic_in(Some("coalesce-new"));
        assert!(any_armed());
        maybe_panic("build-ssa"); // wrong pass: no panic
        let r = std::panic::catch_unwind(|| maybe_panic("coalesce-new"));
        let payload = r.expect_err("armed pass must panic");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected panic in pass 'coalesce-new'"));

        inject_solver_spin(true);
        inject_solver_spin(true); // idempotent
        assert!(solver_spin());
        inject_verifier_violation_after(Some("range-fold"));
        assert!(violation_target("range-fold"));
        assert!(!violation_target("const-fold"));

        clear_injections();
        assert!(!any_armed());
        assert!(!solver_spin());
        assert!(!violation_target("range-fold"));
        maybe_panic("coalesce-new"); // disarmed: no panic
    }
}
