//! Epoch-keyed analysis caching with preservation-aware invalidation.
//!
//! The paper's §3.7 `O(n·α(n))` bound counts only union-find / forest /
//! rewrite work: liveness and dominators are *assumed available*, the
//! shape a real compiler uses, where analyses are shared between passes.
//! [`AnalysisManager`] makes that assumption real: every consumer pulls
//! `ControlFlowGraph`, `DomTree`, [`Liveness`] (dataflow or SSA-sparse),
//! and [`LoopNesting`] from one cache keyed on the function's
//! modification [epoch](fcc_ir::Function::epoch), so a phase that did not
//! change the code pays nothing for the next phase's analyses.
//!
//! Passes report what they kept intact through a [`PreservedAnalyses`]
//! mask: a pass that rewrites instructions but leaves every edge alone
//! (constant folding without branch resolution, copy propagation, GVN)
//! preserves the CFG, dominator tree, and loop nesting — only liveness
//! is recomputed. [`AnalysisManager::invalidate`] re-stamps the
//! preserved entries to the post-pass epoch and drops the rest.
//!
//! Analyses are handed out as `Rc<T>` so a caller can hold several at
//! once (and keep them across further `&mut` manager calls) without
//! fighting the borrow checker; hit/miss counters and a peak-bytes
//! high-water mark make cache behaviour observable per phase (see
//! `fcc_bench::PipelineReport`).

use std::rc::Rc;

use fcc_ir::{ControlFlowGraph, Function};

use crate::domtree::DomTree;
use crate::liveness::Liveness;
use crate::loops::LoopNesting;
use crate::pressure::Pressure;

/// Bitmask of analyses a pass left valid. Combine with `|`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PreservedAnalyses {
    bits: u8,
}

impl PreservedAnalyses {
    const CFG: u8 = 1 << 0;
    const DOMTREE: u8 = 1 << 1;
    const LIVENESS: u8 = 1 << 2;
    const LIVENESS_SSA: u8 = 1 << 3;
    const LOOPS: u8 = 1 << 4;
    const PRESSURE: u8 = 1 << 5;

    /// Nothing survives: the pass restructured control flow.
    pub const fn none() -> Self {
        PreservedAnalyses { bits: 0 }
    }

    /// Everything survives: the pass did not change the function.
    pub const fn all() -> Self {
        PreservedAnalyses {
            bits: Self::CFG
                | Self::DOMTREE
                | Self::LIVENESS
                | Self::LIVENESS_SSA
                | Self::LOOPS
                | Self::PRESSURE,
        }
    }

    /// The pass rewrote instructions but kept every block and edge: the
    /// CFG-derived structures (CFG, dominator tree, loop nesting) stand,
    /// while both liveness variants — and pressure, which derives from
    /// liveness — are dropped.
    pub const fn cfg_core() -> Self {
        PreservedAnalyses {
            bits: Self::CFG | Self::DOMTREE | Self::LOOPS,
        }
    }

    const fn has(self, bit: u8) -> bool {
        self.bits & bit != 0
    }
}

impl std::ops::BitOr for PreservedAnalyses {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        PreservedAnalyses {
            bits: self.bits | rhs.bits,
        }
    }
}

/// Cache hit/miss counts for one analysis kind.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct HitMiss {
    pub hits: u64,
    pub misses: u64,
}

impl std::ops::Sub for HitMiss {
    type Output = HitMiss;
    fn sub(self, rhs: HitMiss) -> HitMiss {
        HitMiss {
            hits: self.hits - rhs.hits,
            misses: self.misses - rhs.misses,
        }
    }
}

impl std::ops::AddAssign for HitMiss {
    fn add_assign(&mut self, rhs: HitMiss) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
    }
}

/// Per-analysis cache counters; subtract two snapshots for a phase delta.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct AnalysisCounters {
    pub cfg: HitMiss,
    pub domtree: HitMiss,
    pub liveness: HitMiss,
    pub liveness_ssa: HitMiss,
    pub loops: HitMiss,
    pub pressure: HitMiss,
}

impl AnalysisCounters {
    /// Total cache hits across all analysis kinds.
    pub fn total_hits(&self) -> u64 {
        self.cfg.hits
            + self.domtree.hits
            + self.liveness.hits
            + self.liveness_ssa.hits
            + self.loops.hits
            + self.pressure.hits
    }

    /// Total cache misses (= full recomputations) across all kinds.
    pub fn total_misses(&self) -> u64 {
        self.cfg.misses
            + self.domtree.misses
            + self.liveness.misses
            + self.liveness_ssa.misses
            + self.loops.misses
            + self.pressure.misses
    }

    /// `(label, hits, misses)` per analysis kind, for table printers.
    pub fn rows(&self) -> [(&'static str, u64, u64); 6] {
        [
            ("cfg", self.cfg.hits, self.cfg.misses),
            ("domtree", self.domtree.hits, self.domtree.misses),
            ("liveness", self.liveness.hits, self.liveness.misses),
            ("live-ssa", self.liveness_ssa.hits, self.liveness_ssa.misses),
            ("loops", self.loops.hits, self.loops.misses),
            ("pressure", self.pressure.hits, self.pressure.misses),
        ]
    }
}

impl std::ops::Sub for AnalysisCounters {
    type Output = AnalysisCounters;
    fn sub(self, rhs: AnalysisCounters) -> AnalysisCounters {
        AnalysisCounters {
            cfg: self.cfg - rhs.cfg,
            domtree: self.domtree - rhs.domtree,
            liveness: self.liveness - rhs.liveness,
            liveness_ssa: self.liveness_ssa - rhs.liveness_ssa,
            loops: self.loops - rhs.loops,
            pressure: self.pressure - rhs.pressure,
        }
    }
}

impl std::ops::AddAssign for AnalysisCounters {
    fn add_assign(&mut self, rhs: AnalysisCounters) {
        self.cfg += rhs.cfg;
        self.domtree += rhs.domtree;
        self.liveness += rhs.liveness;
        self.liveness_ssa += rhs.liveness_ssa;
        self.loops += rhs.loops;
        self.pressure += rhs.pressure;
    }
}

/// One cached analysis: the epoch it was computed (or re-stamped) at,
/// plus the shared result.
struct Slot<T> {
    entry: Option<(u64, Rc<T>)>,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot { entry: None }
    }
}

impl<T> Slot<T> {
    fn get(&self, epoch: u64) -> Option<Rc<T>> {
        match &self.entry {
            Some((e, rc)) if *e == epoch => Some(Rc::clone(rc)),
            _ => None,
        }
    }

    fn put(&mut self, epoch: u64, value: T) -> Rc<T> {
        let rc = Rc::new(value);
        self.entry = Some((epoch, Rc::clone(&rc)));
        rc
    }

    /// Keep the entry but declare it valid for `epoch` too (the pass
    /// that moved the function to `epoch` preserved this analysis).
    ///
    /// Only an entry stamped `valid_at` — the epoch the function had
    /// when the pass started — may be carried forward. An older stamp
    /// means the entry was already stale before the pass ran (e.g. an
    /// analysis computed mid-mutation by an earlier phase), and
    /// re-stamping it would launder it as fresh; such entries are
    /// dropped instead.
    fn restamp(&mut self, valid_at: u64, epoch: u64) {
        match &mut self.entry {
            Some((e, _)) if *e == valid_at => *e = epoch,
            Some(_) => self.entry = None,
            None => {}
        }
    }

    fn clear(&mut self) {
        self.entry = None;
    }
}

/// Lazily computes and caches the standard function analyses, keyed on
/// [`Function::epoch`].
///
/// One manager serves **one function's pipeline** (clones included while
/// they stay unmodified — epochs are globally unique, so a manager can
/// never confuse two diverged functions; at worst it recomputes).
#[derive(Default)]
pub struct AnalysisManager {
    cfg: Slot<ControlFlowGraph>,
    domtree: Slot<DomTree>,
    liveness: Slot<Liveness>,
    liveness_ssa: Slot<Liveness>,
    loops: Slot<LoopNesting>,
    pressure: Slot<Pressure>,
    counters: AnalysisCounters,
    peak_bytes: usize,
}

impl AnalysisManager {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The control-flow graph (predecessors, successors, postorder).
    pub fn cfg(&mut self, func: &Function) -> Rc<ControlFlowGraph> {
        let epoch = func.epoch();
        if let Some(hit) = self.cfg.get(epoch) {
            self.counters.cfg.hits += 1;
            return hit;
        }
        self.counters.cfg.misses += 1;
        let rc = self.cfg.put(epoch, ControlFlowGraph::compute(func));
        self.note_bytes();
        rc
    }

    /// The dominator tree (computes and caches the CFG on the way).
    pub fn domtree(&mut self, func: &Function) -> Rc<DomTree> {
        let epoch = func.epoch();
        if let Some(hit) = self.domtree.get(epoch) {
            self.counters.domtree.hits += 1;
            return hit;
        }
        let cfg = self.cfg(func);
        self.counters.domtree.misses += 1;
        let rc = self.domtree.put(epoch, DomTree::compute(func, &cfg));
        self.note_bytes();
        rc
    }

    /// φ-aware dataflow liveness (works on non-SSA code too).
    pub fn liveness(&mut self, func: &Function) -> Rc<Liveness> {
        let epoch = func.epoch();
        if let Some(hit) = self.liveness.get(epoch) {
            self.counters.liveness.hits += 1;
            return hit;
        }
        let cfg = self.cfg(func);
        self.counters.liveness.misses += 1;
        let rc = self.liveness.put(epoch, Liveness::compute(func, &cfg));
        self.note_bytes();
        rc
    }

    /// Sparse SSA liveness (requires strict SSA; same sets as
    /// [`Self::liveness`], computed per-variable from def/use chains).
    pub fn liveness_ssa(&mut self, func: &Function) -> Rc<Liveness> {
        let epoch = func.epoch();
        if let Some(hit) = self.liveness_ssa.get(epoch) {
            self.counters.liveness_ssa.hits += 1;
            return hit;
        }
        let cfg = self.cfg(func);
        self.counters.liveness_ssa.misses += 1;
        let rc = self
            .liveness_ssa
            .put(epoch, Liveness::compute_ssa(func, &cfg));
        self.note_bytes();
        rc
    }

    /// Natural-loop nesting (computes and caches CFG + dominators).
    pub fn loops(&mut self, func: &Function) -> Rc<LoopNesting> {
        let epoch = func.epoch();
        if let Some(hit) = self.loops.get(epoch) {
            self.counters.loops.hits += 1;
            return hit;
        }
        let cfg = self.cfg(func);
        let dt = self.domtree(func);
        self.counters.loops.misses += 1;
        let rc = self.loops.put(epoch, LoopNesting::compute(&cfg, &dt));
        self.note_bytes();
        rc
    }

    /// Per-point register pressure from sparse SSA liveness (computes
    /// and caches CFG + SSA liveness on the way). Requires strict SSA;
    /// for post-destruction code compute [`Pressure`] directly from the
    /// dataflow [`Self::liveness`].
    pub fn pressure(&mut self, func: &Function) -> Rc<Pressure> {
        let epoch = func.epoch();
        if let Some(hit) = self.pressure.get(epoch) {
            self.counters.pressure.hits += 1;
            return hit;
        }
        let cfg = self.cfg(func);
        let live = self.liveness_ssa(func);
        self.counters.pressure.misses += 1;
        let rc = self
            .pressure
            .put(epoch, Pressure::compute(func, &cfg, &live));
        self.note_bytes();
        rc
    }

    /// Apply a pass's preservation promise after it mutated `func`:
    /// preserved analyses are re-stamped to the new epoch, the rest are
    /// dropped. Call with the *post-pass* function; `valid_at` is the
    /// epoch the function had **before** the pass ran (snapshot it with
    /// [`Function::epoch`]). Entries stamped earlier than `valid_at`
    /// were stale before the pass started and are dropped even when
    /// nominally preserved — re-stamping them would present an analysis
    /// of some older function state as current.
    pub fn invalidate(&mut self, func: &Function, valid_at: u64, preserved: PreservedAnalyses) {
        let epoch = func.epoch();
        if preserved.has(PreservedAnalyses::CFG) {
            self.cfg.restamp(valid_at, epoch);
        } else {
            self.cfg.clear();
        }
        if preserved.has(PreservedAnalyses::DOMTREE) {
            self.domtree.restamp(valid_at, epoch);
        } else {
            self.domtree.clear();
        }
        if preserved.has(PreservedAnalyses::LIVENESS) {
            self.liveness.restamp(valid_at, epoch);
        } else {
            self.liveness.clear();
        }
        if preserved.has(PreservedAnalyses::LIVENESS_SSA) {
            self.liveness_ssa.restamp(valid_at, epoch);
        } else {
            self.liveness_ssa.clear();
        }
        if preserved.has(PreservedAnalyses::LOOPS) {
            self.loops.restamp(valid_at, epoch);
        } else {
            self.loops.clear();
        }
        if preserved.has(PreservedAnalyses::PRESSURE) {
            self.pressure.restamp(valid_at, epoch);
        } else {
            self.pressure.clear();
        }
    }

    /// Drop every cached analysis (counters and peak survive).
    pub fn clear(&mut self) {
        self.cfg.clear();
        self.domtree.clear();
        self.liveness.clear();
        self.liveness_ssa.clear();
        self.loops.clear();
        self.pressure.clear();
    }

    /// Cumulative hit/miss counters.
    pub fn counters(&self) -> AnalysisCounters {
        self.counters
    }

    /// High-water mark of the cache's heap footprint, in bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Current heap footprint of all cached analyses, in bytes.
    pub fn current_bytes(&self) -> usize {
        let mut total = 0;
        if let Some((_, c)) = &self.cfg.entry {
            total += c.bytes();
        }
        if let Some((_, d)) = &self.domtree.entry {
            total += d.bytes();
        }
        if let Some((_, l)) = &self.liveness.entry {
            total += l.bytes();
        }
        if let Some((_, l)) = &self.liveness_ssa.entry {
            total += l.bytes();
        }
        if let Some((_, l)) = &self.loops.entry {
            total += l.bytes();
        }
        if let Some((_, p)) = &self.pressure.entry {
            total += p.bytes();
        }
        total
    }

    // ----- non-computing accessors (for invalidation tests) --------------

    /// The cached CFG, if one is valid for `func`'s current epoch.
    pub fn cached_cfg(&self, func: &Function) -> Option<Rc<ControlFlowGraph>> {
        self.cfg.get(func.epoch())
    }

    /// The cached dominator tree, if valid for `func`'s current epoch.
    pub fn cached_domtree(&self, func: &Function) -> Option<Rc<DomTree>> {
        self.domtree.get(func.epoch())
    }

    /// The cached dataflow liveness, if valid for `func`'s current epoch.
    pub fn cached_liveness(&self, func: &Function) -> Option<Rc<Liveness>> {
        self.liveness.get(func.epoch())
    }

    /// The cached SSA liveness, if valid for `func`'s current epoch.
    pub fn cached_liveness_ssa(&self, func: &Function) -> Option<Rc<Liveness>> {
        self.liveness_ssa.get(func.epoch())
    }

    /// The cached loop nesting, if valid for `func`'s current epoch.
    pub fn cached_loops(&self, func: &Function) -> Option<Rc<LoopNesting>> {
        self.loops.get(func.epoch())
    }

    /// The cached pressure, if valid for `func`'s current epoch.
    pub fn cached_pressure(&self, func: &Function) -> Option<Rc<Pressure>> {
        self.pressure.get(func.epoch())
    }

    fn note_bytes(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.current_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::InstKind;

    fn diamond() -> Function {
        parse_function(
            "function @d(1) {
             b0:
                 v0 = param 0
                 branch v0, b1, b2
             b1:
                 v1 = const 1
                 jump b3
             b2:
                 v2 = const 2
                 jump b3
             b3:
                 return v0
             }",
        )
        .unwrap()
    }

    #[test]
    fn second_query_hits() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        let a = am.cfg(&f);
        let b = am.cfg(&f);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(am.counters().cfg, HitMiss { hits: 1, misses: 1 });
    }

    #[test]
    fn mutation_invalidates() {
        let mut f = diamond();
        let mut am = AnalysisManager::new();
        let a = am.domtree(&f);
        let v = f.new_value();
        f.insert_before_terminator(f.entry(), InstKind::Const { imm: 7 }, Some(v));
        let b = am.domtree(&f);
        assert!(!Rc::ptr_eq(&a, &b), "stale domtree served after mutation");
        assert_eq!(am.counters().domtree.misses, 2);
    }

    #[test]
    fn domtree_primes_cfg() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        am.domtree(&f);
        // The CFG was computed as a dependency; asking for it now hits.
        am.cfg(&f);
        assert_eq!(am.counters().cfg, HitMiss { hits: 1, misses: 1 });
    }

    #[test]
    fn preservation_restamps() {
        let mut f = diamond();
        let mut am = AnalysisManager::new();
        let dt_before = am.domtree(&f);
        am.liveness(&f);
        let before = f.epoch();

        // An instruction-only rewrite: epoch moves, CFG shape intact.
        let v = f.new_value();
        f.insert_before_terminator(f.entry(), InstKind::Const { imm: 7 }, Some(v));
        am.invalidate(&f, before, PreservedAnalyses::cfg_core());

        // Dominator tree survived (same Rc), liveness did not.
        let dt_after = am.domtree(&f);
        assert!(Rc::ptr_eq(&dt_before, &dt_after));
        assert_eq!(am.counters().domtree, HitMiss { hits: 1, misses: 1 });
        assert!(am.cached_liveness(&f).is_none());
        am.liveness(&f);
        assert_eq!(am.counters().liveness.misses, 2);
    }

    #[test]
    fn invalidate_none_drops_everything() {
        let mut f = diamond();
        let mut am = AnalysisManager::new();
        am.cfg(&f);
        am.domtree(&f);
        am.loops(&f);
        let before = f.epoch();
        f.bump_epoch();
        am.invalidate(&f, before, PreservedAnalyses::none());
        assert!(am.cached_cfg(&f).is_none());
        assert!(am.cached_domtree(&f).is_none());
        assert!(am.cached_loops(&f).is_none());
    }

    #[test]
    fn invalidate_never_launders_pre_stale_entries() {
        // An analysis computed, then invalidated by a mutation, must not
        // be re-stamped as fresh by a later invalidate whose `valid_at`
        // postdates it — only entries valid at the pass's start epoch
        // may be carried forward.
        let mut f = diamond();
        let mut am = AnalysisManager::new();
        am.liveness(&f); // stamped at epoch E0
        let v = f.new_value();
        f.insert_before_terminator(f.entry(), InstKind::Const { imm: 7 }, Some(v)); // E1
        let before = f.epoch();
        f.bump_epoch(); // a "pass" conservatively bumps without changing anything
        am.invalidate(&f, before, PreservedAnalyses::all());
        // The liveness entry was stale already at `before`; it must be
        // dropped, not presented as valid for the current epoch.
        assert!(
            am.cached_liveness(&f).is_none(),
            "stale liveness was laundered"
        );
    }

    #[test]
    fn peak_bytes_grows_with_cache() {
        let f = diamond();
        let mut am = AnalysisManager::new();
        assert_eq!(am.peak_bytes(), 0);
        am.cfg(&f);
        let after_cfg = am.peak_bytes();
        assert!(after_cfg > 0);
        am.liveness(&f);
        assert!(am.peak_bytes() >= after_cfg);
        assert!(am.current_bytes() <= am.peak_bytes());
    }

    #[test]
    fn distinct_functions_never_share_entries() {
        // Two structurally identical functions have different epochs, so
        // one manager recomputes rather than serving the wrong cache.
        let f = diamond();
        let g = diamond();
        let mut am = AnalysisManager::new();
        am.cfg(&f);
        assert!(am.cached_cfg(&g).is_none());
        am.cfg(&g);
        assert_eq!(am.counters().cfg, HitMiss { hits: 0, misses: 2 });
    }
}
