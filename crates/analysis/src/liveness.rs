//! φ-aware live-variable analysis.
//!
//! A classical backward dataflow over per-block bit sets, with the φ
//! convention the paper relies on (Section 3.1):
//!
//! * a φ argument `v` flowing from predecessor `p` is live-**out** of `p`,
//!   but is **not** live-in to the φ's own block — the move "happens on the
//!   edge";
//! * a φ destination is an ordinary definition at the top of its block.
//!
//! This is what lets the algorithm's first filter distinguish "`aᵢ` is
//! live-in to the φ block" (a real interference: some other use needs the
//! old value) from "`aᵢ` merely flows into the φ" (no interference).

use crate::bitset::BitSet;
use fcc_ir::{Block, ControlFlowGraph, Function, InstKind, SecondaryMap, Value};

/// Per-block live-in/live-out sets over the value universe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Liveness {
    live_in: SecondaryMap<Block, BitSet>,
    live_out: SecondaryMap<Block, BitSet>,
    universe: usize,
    iterations: usize,
}

impl Liveness {
    /// Compute liveness for an **SSA** function by sparse per-variable
    /// backward propagation (Appel/Boissinot style): from each use, walk
    /// predecessors marking live-in/live-out until the (unique) defining
    /// block stops the walk. Visits only blocks where something is
    /// actually live, so it scales with the total size of live ranges
    /// rather than `blocks × values` — the shape a fast SSA-destruction
    /// pass wants.
    ///
    /// Produces exactly the same sets as [`compute`](Self::compute)
    /// (property-checked); behaviour on non-SSA input (multiple
    /// definitions) is *not* meaningful — use the dataflow version there.
    pub fn compute_ssa(func: &Function, cfg: &ControlFlowGraph) -> Self {
        let n = func.num_values();
        let mut live_in: SecondaryMap<Block, BitSet> = SecondaryMap::new();
        let mut live_out: SecondaryMap<Block, BitSet> = SecondaryMap::new();
        for &b in cfg.postorder() {
            live_in[b] = BitSet::new(n);
            live_out[b] = BitSet::new(n);
        }

        // Unique definition block per value.
        let mut def_block: Vec<Option<Block>> = vec![None; n];
        for &b in cfg.postorder() {
            for &inst in func.block_insts(b) {
                if let Some(d) = func.inst(inst).dst {
                    def_block[d.index()] = Some(b);
                }
            }
        }

        // Walk upward from a block where `v` is live-in, marking
        // predecessors' live-out (and transitively their live-in) until
        // the defining block terminates the walk.
        let mut stack: Vec<Block> = Vec::new();
        let up = |v: Value,
                  start: Block,
                  live_in: &mut SecondaryMap<Block, BitSet>,
                  live_out: &mut SecondaryMap<Block, BitSet>,
                  stack: &mut Vec<Block>| {
            let dv = def_block[v.index()];
            if dv == Some(start) {
                return; // defined here: live only inside the block
            }
            if !live_in[start].insert(v.index()) {
                return; // already propagated from here
            }
            stack.push(start);
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    live_out[p].insert(v.index());
                    if dv == Some(p) {
                        continue; // the walk stops at the definition
                    }
                    if live_in[p].insert(v.index()) {
                        stack.push(p);
                    }
                }
            }
        };

        for &b in cfg.postorder() {
            for &inst in func.block_insts(b) {
                let data = func.inst(inst);
                data.kind.for_each_use(|v| {
                    up(v, b, &mut live_in, &mut live_out, &mut stack);
                });
                if let InstKind::Phi { args } = &data.kind {
                    // φ args are live-out of their predecessor edge; the
                    // upward walk starts *at the predecessor*.
                    for a in args {
                        if !cfg.is_reachable(a.pred) {
                            continue;
                        }
                        live_out[a.pred].insert(a.value.index());
                        up(a.value, a.pred, &mut live_in, &mut live_out, &mut stack);
                    }
                }
            }
        }

        Liveness {
            live_in,
            live_out,
            universe: n,
            iterations: 1,
        }
    }

    /// Compute liveness for `func`.
    pub fn compute(func: &Function, cfg: &ControlFlowGraph) -> Self {
        let n = func.num_values();
        let postorder = cfg.postorder();

        // Per-block defs and upward-exposed uses (φ args excluded from
        // uses; φ dsts are defs).
        let mut defs: SecondaryMap<Block, BitSet> = SecondaryMap::new();
        let mut ue: SecondaryMap<Block, BitSet> = SecondaryMap::new();
        // φ uses per *predecessor* edge: for each block, the values its
        // successors' φs read from it.
        let mut phi_out: SecondaryMap<Block, BitSet> = SecondaryMap::new();

        for &b in postorder {
            let mut d = BitSet::new(n);
            let mut u = BitSet::new(n);
            for &inst in func.block_insts(b) {
                let data = func.inst(inst);
                if !data.kind.is_phi() {
                    data.kind.for_each_use(|v| {
                        if !d.contains(v.index()) {
                            u.insert(v.index());
                        }
                    });
                }
                if let Some(dst) = data.dst {
                    d.insert(dst.index());
                }
                if let InstKind::Phi { args } = &data.kind {
                    for a in args {
                        if phi_out[a.pred].universe() != n {
                            phi_out[a.pred] = BitSet::new(n);
                        }
                        phi_out[a.pred].insert(a.value.index());
                    }
                }
            }
            defs[b] = d;
            ue[b] = u;
        }
        for &b in postorder {
            if phi_out[b].universe() != n {
                phi_out[b] = BitSet::new(n);
            }
        }

        let mut live_in: SecondaryMap<Block, BitSet> = SecondaryMap::new();
        let mut live_out: SecondaryMap<Block, BitSet> = SecondaryMap::new();
        for &b in postorder {
            live_in[b] = BitSet::new(n);
            live_out[b] = BitSet::new(n);
        }

        // Collect, per block, which successor φs read which of *our*
        // values: live-out(b) ⊇ { v | φ in succ s has arg [b: v] }.
        // phi_out[b] computed above is exactly that union.

        let mut iterations = 0;
        let mut changed = true;
        while changed {
            changed = false;
            iterations += 1;
            // Backward problem: postorder of the forward CFG converges
            // quickly (each block is visited after its successors on
            // acyclic paths).
            for &b in postorder {
                let mut out = phi_out[b].clone();
                for &s in cfg.succs(b) {
                    out.union_with(&live_in[s]);
                }
                if out != live_out[b] {
                    live_out[b] = out.clone();
                }
                out.difference_with(&defs[b]);
                out.union_with(&ue[b]);
                if out != live_in[b] {
                    live_in[b] = out;
                    changed = true;
                }
            }
        }

        Liveness {
            live_in,
            live_out,
            universe: n,
            iterations,
        }
    }

    /// The live-in set of `block`.
    pub fn live_in(&self, block: Block) -> &BitSet {
        &self.live_in[block]
    }

    /// The live-out set of `block`.
    pub fn live_out(&self, block: Block) -> &BitSet {
        &self.live_out[block]
    }

    /// Whether `v` is live-in at `block`.
    pub fn is_live_in(&self, v: Value, block: Block) -> bool {
        self.live_in[block].contains(v.index())
    }

    /// Whether `v` is live-out of `block`.
    pub fn is_live_out(&self, v: Value, block: Block) -> bool {
        self.live_out[block].contains(v.index())
    }

    /// The value-universe size the sets were computed over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of fixpoint sweeps performed (for the efficiency tables).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Heap bytes used by the live sets.
    pub fn bytes(&self) -> usize {
        let per = |m: &SecondaryMap<Block, BitSet>| -> usize {
            (0..m.len()).map(|i| m[Block::new(i)].bytes()).sum()
        };
        per(&self.live_in) + per(&self.live_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;

    fn live(text: &str) -> (Function, Liveness) {
        let f = parse_function(text).unwrap();
        let cfg = ControlFlowGraph::compute(&f);
        let l = Liveness::compute(&f, &cfg);
        (f, l)
    }

    #[test]
    fn straightline_liveness_is_empty_at_boundaries() {
        let (f, l) = live(
            "function @s(0) {
             b0:
                 v0 = const 1
                 v1 = add v0, v0
                 return v1
             }",
        );
        let b0 = f.entry();
        assert!(l.live_in(b0).is_empty());
        assert!(l.live_out(b0).is_empty());
    }

    #[test]
    fn value_live_across_block() {
        let (_, l) = live(
            "function @a(0) {
             b0:
                 v0 = const 1
                 jump b1
             b1:
                 return v0
             }",
        );
        let b0 = Block::new(0);
        let b1 = Block::new(1);
        let v0 = Value::new(0);
        assert!(l.is_live_out(v0, b0));
        assert!(l.is_live_in(v0, b1));
        assert!(!l.is_live_in(v0, b0));
    }

    #[test]
    fn phi_args_live_out_of_pred_not_live_in_of_phi_block() {
        let (_, l) = live(
            "function @p(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b3
             b2:
                 v2 = const 3
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }",
        );
        let v1 = Value::new(1);
        let v2 = Value::new(2);
        let b1 = Block::new(1);
        let b2 = Block::new(2);
        let b3 = Block::new(3);
        assert!(l.is_live_out(v1, b1), "phi arg live out of its pred");
        assert!(l.is_live_out(v2, b2));
        assert!(
            !l.is_live_in(v1, b3),
            "phi arg must NOT be live-in at the phi block"
        );
        assert!(!l.is_live_in(v2, b3));
        assert!(!l.is_live_out(v1, b2), "v1 does not flow through b2");
    }

    #[test]
    fn phi_arg_with_other_use_is_live_in() {
        // v1 feeds the φ *and* is used directly in b3 → it must be live-in
        // at b3 (the paper's "latter case").
        let (_, l) = live(
            "function @q(0) {
             b0:
                 v0 = const 1
                 v1 = const 5
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v0]
                 v4 = add v3, v1
                 return v4
             }",
        );
        assert!(l.is_live_in(Value::new(1), Block::new(3)));
        assert!(!l.is_live_in(Value::new(0), Block::new(3)));
    }

    #[test]
    fn loop_carried_value_live_around_backedge() {
        let (_, l) = live(
            "function @loop(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 jump b1
             b1:
                 v2 = phi [b0: v1], [b1: v3]
                 v3 = add v2, v0
                 v4 = lt v3, v0
                 branch v4, b1, b2
             b2:
                 return v3
             }",
        );
        let b1 = Block::new(1);
        // v0 (the param) is used every iteration: live in and out of b1.
        assert!(l.is_live_in(Value::new(0), b1));
        assert!(l.is_live_out(Value::new(0), b1));
        // v3 flows around the backedge into the φ: live-out of b1, and
        // also live-in at b2's predecessor side; but not live-in to b1.
        assert!(l.is_live_out(Value::new(3), b1));
        assert!(!l.is_live_in(Value::new(3), b1));
        // The φ destination v2 is consumed inside b1 only.
        assert!(!l.is_live_out(Value::new(2), b1));
    }

    #[test]
    fn dead_value_nowhere_live() {
        let (f, l) = live(
            "function @d(0) {
             b0:
                 v0 = const 1
                 v1 = const 2
                 jump b1
             b1:
                 return v1
             }",
        );
        for b in f.blocks() {
            assert!(!l.is_live_in(Value::new(0), b));
            assert!(!l.is_live_out(Value::new(0), b));
        }
    }

    #[test]
    fn redefinition_kills_liveness() {
        let (_, l) = live(
            "function @k(0) {
             b0:
                 v0 = const 1
                 jump b1
             b1:
                 v1 = add v0, v0
                 v0 = const 2
                 jump b2
             b2:
                 v2 = add v0, v1
                 return v2
             }",
        );
        let b0 = Block::new(0);
        let b1 = Block::new(1);
        // v0 is used at the head of b1 (upward exposed) → live-out of b0.
        assert!(l.is_live_out(Value::new(0), b0));
        // v0 is also redefined in b1 and used in b2 → live-out of b1.
        assert!(l.is_live_out(Value::new(0), b1));
        // v1 live across b1→b2.
        assert!(l.is_live_out(Value::new(1), b1));
        assert!(!l.is_live_in(Value::new(1), b1));
    }
}
