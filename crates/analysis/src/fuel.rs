//! Fuel budgets: an externally enforced bound on iterative algorithms.
//!
//! The fixpoint loops in this workspace (the sparse dataflow solver, the
//! dominance-forest walks, parallel-copy sequentialisation, the pass
//! manager itself) are all proven to terminate — *when their transfer
//! functions are correct*. A bug in any of them means a hang, which a
//! batch driver cannot distinguish from a slow function. Fuel turns that
//! hang into a structured, attributable error: the driver installs a
//! [`Fuel`] budget for the current thread, the loops call [`checkpoint`]
//! once per unit of work, and an exhausted budget unwinds with a typed
//! [`FuelExhausted`] payload naming the pass that was running.
//!
//! Unwinding (rather than returning `Result` from every loop) is
//! deliberate: the loops are called from dozens of infallible signatures
//! (`Liveness::compute`-style), and the driver already catches panics
//! per function — fuel exhaustion rides the same containment path, and
//! [`FuelExhausted`] is recognised by its payload type when the panic is
//! caught (`fcc_core::CompileError::from_panic`).
//!
//! The handle is a shared atomic counter, so the spent figure survives
//! the unwind and clones of the handle observe one budget. With no fuel
//! installed (the default), [`checkpoint`] still counts steps on the
//! thread's implicit unlimited budget — a compile outside the driver
//! behaves exactly as before.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared step budget. Cloning shares the counter.
#[derive(Clone, Debug)]
pub struct Fuel {
    inner: Arc<FuelInner>,
}

#[derive(Debug)]
struct FuelInner {
    spent: AtomicU64,
    limit: u64,
}

impl Fuel {
    /// A budget of `limit` steps; the checkpoint that crosses it panics
    /// with [`FuelExhausted`].
    pub fn limited(limit: u64) -> Fuel {
        Fuel {
            inner: Arc::new(FuelInner {
                spent: AtomicU64::new(0),
                limit,
            }),
        }
    }

    /// A counting-only budget that never exhausts.
    pub fn unlimited() -> Fuel {
        Fuel::limited(u64::MAX)
    }

    /// Steps charged so far.
    pub fn spent(&self) -> u64 {
        self.inner.spent.load(Ordering::Relaxed)
    }

    /// The installed limit (`u64::MAX` for unlimited).
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Charge `steps`; `Err(total)` once the budget is crossed.
    fn charge(&self, steps: u64) -> Result<(), u64> {
        let spent = self.inner.spent.fetch_add(steps, Ordering::Relaxed) + steps;
        if spent > self.inner.limit {
            Err(spent)
        } else {
            Ok(())
        }
    }
}

/// The typed panic payload of an exhausted budget. Catchers downcast the
/// payload to this type to tell a fuel stop from a genuine crash.
#[derive(Clone, Debug)]
pub struct FuelExhausted {
    /// The pass/phase label current when the budget ran out (see
    /// [`set_pass`]).
    pub pass: String,
    /// Steps charged when the checkpoint fired (≥ the limit).
    pub spent: u64,
}

impl std::fmt::Display for FuelExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fuel exhausted in pass '{}' after {} step(s)",
            self.pass, self.spent
        )
    }
}

/// A wall-clock deadline, installed alongside fuel and enforced by the
/// same [`checkpoint`] calls. The absolute instant is fixed when the
/// *request* arrives (not per function), so every function compiled for
/// one request shares one clock.
///
/// `budget_ms` is carried only for reporting: the unwound payload (and
/// the error it becomes) names the configured budget, never the elapsed
/// time, so the rendered error text is a pure function of the request.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
    budget_ms: u64,
}

impl Deadline {
    /// A deadline `budget_ms` milliseconds from now.
    pub fn after_ms(budget_ms: u64) -> Deadline {
        Deadline {
            at: Instant::now() + Duration::from_millis(budget_ms),
            budget_ms,
        }
    }

    /// The configured budget in milliseconds (for reporting).
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Has the wall clock passed the deadline?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// The typed panic payload of a missed wall-clock deadline. Like
/// [`FuelExhausted`], catchers recognise it by downcast; unlike fuel it
/// reports the configured budget (`budget_ms`), not a measured duration,
/// so the payload renders identically however late the stop fired.
#[derive(Clone, Debug)]
pub struct DeadlineExceeded {
    /// The pass/phase label current when the deadline fired.
    pub pass: String,
    /// The configured wall-clock budget in milliseconds.
    pub budget_ms: u64,
}

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadline exceeded in pass '{}' (budget {}ms)",
            self.pass, self.budget_ms
        )
    }
}

/// How many [`checkpoint`] calls ride between wall-clock reads. The
/// first checkpoint after [`with_deadline`] installs always checks, so a
/// deadline already in the past stops the compile at its first unit of
/// work regardless of stride.
const DEADLINE_STRIDE: u32 = 64;

thread_local! {
    static ACTIVE: RefCell<Option<Fuel>> = const { RefCell::new(None) };
    static PASS: Cell<&'static str> = const { Cell::new("<start>") };
    static DEADLINE: Cell<Option<Deadline>> = const { Cell::new(None) };
    static DEADLINE_SKIP: Cell<u32> = const { Cell::new(0) };
}

/// Install `fuel` as this thread's budget for the duration of `f`
/// (restored on return *and* on unwind, so nested scopes compose).
pub fn with_fuel<R>(fuel: &Fuel, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Fuel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(fuel.clone()));
    let _restore = Restore(prev);
    f()
}

/// Install `deadline` as this thread's wall-clock bound for the duration
/// of `f` (restored on return *and* on unwind). With `None` this is a
/// plain call — the common no-deadline path stays free.
pub fn with_deadline<R>(deadline: Option<Deadline>, f: impl FnOnce() -> R) -> R {
    let Some(deadline) = deadline else { return f() };
    struct Restore(Option<Deadline>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|d| d.set(self.0));
        }
    }
    let prev = DEADLINE.with(|d| d.replace(Some(deadline)));
    // Force the very first checkpoint to consult the clock.
    DEADLINE_SKIP.with(|s| s.set(0));
    let _restore = Restore(prev);
    f()
}

/// Record the pass/phase now running on this thread, for attribution of
/// fuel stops and contained panics. Labels are the `&'static str` names
/// the instrumentation layer already uses (`"build-ssa"`, `"range-fold"`,
/// …).
pub fn set_pass(label: &'static str) {
    PASS.with(|p| p.set(label));
}

/// The label most recently passed to [`set_pass`] on this thread.
pub fn current_pass() -> &'static str {
    PASS.with(|p| p.get())
}

/// Charge `steps` against the thread's budget, if one is installed, and
/// (every [`DEADLINE_STRIDE`] calls) compare the wall clock against the
/// thread's installed [`Deadline`], if any.
///
/// # Panics
/// Unwinds with a [`FuelExhausted`] payload when the charge crosses the
/// installed limit, or with a [`DeadlineExceeded`] payload when the
/// installed deadline has passed. Never panics without an installed
/// bound.
pub fn checkpoint(steps: u64) {
    let over = ACTIVE.with(|a| match a.borrow().as_ref() {
        Some(fuel) => fuel.charge(steps).err(),
        None => None,
    });
    if let Some(spent) = over {
        std::panic::panic_any(FuelExhausted {
            pass: current_pass().to_string(),
            spent,
        });
    }
    if let Some(deadline) = DEADLINE.with(|d| d.get()) {
        let due = DEADLINE_SKIP.with(|s| {
            let left = s.get();
            if left == 0 {
                s.set(DEADLINE_STRIDE);
                true
            } else {
                s.set(left - 1);
                false
            }
        });
        if due && deadline.expired() {
            std::panic::panic_any(DeadlineExceeded {
                pass: current_pass().to_string(),
                budget_ms: deadline.budget_ms(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn checkpoint_without_a_budget_is_free() {
        checkpoint(1_000_000);
    }

    #[test]
    fn exhaustion_unwinds_with_the_typed_payload() {
        let fuel = Fuel::limited(10);
        set_pass("unit-test");
        let r = catch_unwind(AssertUnwindSafe(|| {
            with_fuel(&fuel, || {
                for _ in 0..100 {
                    checkpoint(1);
                }
            })
        }));
        let payload = r.expect_err("budget of 10 must not admit 100 steps");
        let fe = payload
            .downcast_ref::<FuelExhausted>()
            .expect("payload is FuelExhausted");
        assert_eq!(fe.pass, "unit-test");
        assert!(fe.spent > 10);
        assert_eq!(fuel.spent(), fe.spent, "the shared counter survives");
        // The budget was uninstalled during the unwind.
        checkpoint(1_000);
    }

    #[test]
    fn unlimited_budget_counts_but_never_stops() {
        let fuel = Fuel::unlimited();
        with_fuel(&fuel, || {
            for _ in 0..1000 {
                checkpoint(3);
            }
        });
        assert_eq!(fuel.spent(), 3000);
    }

    #[test]
    fn expired_deadline_stops_the_first_checkpoint() {
        set_pass("deadline-test");
        let dead = Deadline::after_ms(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            with_deadline(Some(dead), || checkpoint(1))
        }));
        let payload = r.expect_err("a 0ms deadline must stop the first checkpoint");
        let de = payload
            .downcast_ref::<DeadlineExceeded>()
            .expect("payload is DeadlineExceeded");
        assert_eq!(de.pass, "deadline-test");
        assert_eq!(de.budget_ms, 0);
        assert!(de.to_string().contains("budget 0ms"));
        // The deadline was uninstalled during the unwind.
        checkpoint(1_000);
    }

    #[test]
    fn generous_deadline_never_fires() {
        with_deadline(Some(Deadline::after_ms(3_600_000)), || {
            for _ in 0..1000 {
                checkpoint(1);
            }
        });
    }

    #[test]
    fn no_deadline_is_a_plain_call() {
        assert_eq!(with_deadline(None, || 7), 7);
    }

    #[test]
    fn nested_scopes_restore_the_outer_budget() {
        let outer = Fuel::unlimited();
        let inner = Fuel::unlimited();
        with_fuel(&outer, || {
            checkpoint(1);
            with_fuel(&inner, || checkpoint(5));
            checkpoint(1);
        });
        assert_eq!(outer.spent(), 2);
        assert_eq!(inner.spent(), 5);
    }
}
