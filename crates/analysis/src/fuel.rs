//! Fuel budgets: an externally enforced bound on iterative algorithms.
//!
//! The fixpoint loops in this workspace (the sparse dataflow solver, the
//! dominance-forest walks, parallel-copy sequentialisation, the pass
//! manager itself) are all proven to terminate — *when their transfer
//! functions are correct*. A bug in any of them means a hang, which a
//! batch driver cannot distinguish from a slow function. Fuel turns that
//! hang into a structured, attributable error: the driver installs a
//! [`Fuel`] budget for the current thread, the loops call [`checkpoint`]
//! once per unit of work, and an exhausted budget unwinds with a typed
//! [`FuelExhausted`] payload naming the pass that was running.
//!
//! Unwinding (rather than returning `Result` from every loop) is
//! deliberate: the loops are called from dozens of infallible signatures
//! (`Liveness::compute`-style), and the driver already catches panics
//! per function — fuel exhaustion rides the same containment path, and
//! [`FuelExhausted`] is recognised by its payload type when the panic is
//! caught (`fcc_core::CompileError::from_panic`).
//!
//! The handle is a shared atomic counter, so the spent figure survives
//! the unwind and clones of the handle observe one budget. With no fuel
//! installed (the default), [`checkpoint`] still counts steps on the
//! thread's implicit unlimited budget — a compile outside the driver
//! behaves exactly as before.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared step budget. Cloning shares the counter.
#[derive(Clone, Debug)]
pub struct Fuel {
    inner: Arc<FuelInner>,
}

#[derive(Debug)]
struct FuelInner {
    spent: AtomicU64,
    limit: u64,
}

impl Fuel {
    /// A budget of `limit` steps; the checkpoint that crosses it panics
    /// with [`FuelExhausted`].
    pub fn limited(limit: u64) -> Fuel {
        Fuel {
            inner: Arc::new(FuelInner {
                spent: AtomicU64::new(0),
                limit,
            }),
        }
    }

    /// A counting-only budget that never exhausts.
    pub fn unlimited() -> Fuel {
        Fuel::limited(u64::MAX)
    }

    /// Steps charged so far.
    pub fn spent(&self) -> u64 {
        self.inner.spent.load(Ordering::Relaxed)
    }

    /// The installed limit (`u64::MAX` for unlimited).
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Charge `steps`; `Err(total)` once the budget is crossed.
    fn charge(&self, steps: u64) -> Result<(), u64> {
        let spent = self.inner.spent.fetch_add(steps, Ordering::Relaxed) + steps;
        if spent > self.inner.limit {
            Err(spent)
        } else {
            Ok(())
        }
    }
}

/// The typed panic payload of an exhausted budget. Catchers downcast the
/// payload to this type to tell a fuel stop from a genuine crash.
#[derive(Clone, Debug)]
pub struct FuelExhausted {
    /// The pass/phase label current when the budget ran out (see
    /// [`set_pass`]).
    pub pass: String,
    /// Steps charged when the checkpoint fired (≥ the limit).
    pub spent: u64,
}

impl std::fmt::Display for FuelExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fuel exhausted in pass '{}' after {} step(s)",
            self.pass, self.spent
        )
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Fuel>> = const { RefCell::new(None) };
    static PASS: Cell<&'static str> = const { Cell::new("<start>") };
}

/// Install `fuel` as this thread's budget for the duration of `f`
/// (restored on return *and* on unwind, so nested scopes compose).
pub fn with_fuel<R>(fuel: &Fuel, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Fuel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(fuel.clone()));
    let _restore = Restore(prev);
    f()
}

/// Record the pass/phase now running on this thread, for attribution of
/// fuel stops and contained panics. Labels are the `&'static str` names
/// the instrumentation layer already uses (`"build-ssa"`, `"range-fold"`,
/// …).
pub fn set_pass(label: &'static str) {
    PASS.with(|p| p.set(label));
}

/// The label most recently passed to [`set_pass`] on this thread.
pub fn current_pass() -> &'static str {
    PASS.with(|p| p.get())
}

/// Charge `steps` against the thread's budget, if one is installed.
///
/// # Panics
/// Unwinds with a [`FuelExhausted`] payload when the charge crosses the
/// installed limit. Never panics without an installed (limited) budget.
pub fn checkpoint(steps: u64) {
    let over = ACTIVE.with(|a| match a.borrow().as_ref() {
        Some(fuel) => fuel.charge(steps).err(),
        None => None,
    });
    if let Some(spent) = over {
        std::panic::panic_any(FuelExhausted {
            pass: current_pass().to_string(),
            spent,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn checkpoint_without_a_budget_is_free() {
        checkpoint(1_000_000);
    }

    #[test]
    fn exhaustion_unwinds_with_the_typed_payload() {
        let fuel = Fuel::limited(10);
        set_pass("unit-test");
        let r = catch_unwind(AssertUnwindSafe(|| {
            with_fuel(&fuel, || {
                for _ in 0..100 {
                    checkpoint(1);
                }
            })
        }));
        let payload = r.expect_err("budget of 10 must not admit 100 steps");
        let fe = payload
            .downcast_ref::<FuelExhausted>()
            .expect("payload is FuelExhausted");
        assert_eq!(fe.pass, "unit-test");
        assert!(fe.spent > 10);
        assert_eq!(fuel.spent(), fe.spent, "the shared counter survives");
        // The budget was uninstalled during the unwind.
        checkpoint(1_000);
    }

    #[test]
    fn unlimited_budget_counts_but_never_stops() {
        let fuel = Fuel::unlimited();
        with_fuel(&fuel, || {
            for _ in 0..1000 {
                checkpoint(3);
            }
        });
        assert_eq!(fuel.spent(), 3000);
    }

    #[test]
    fn nested_scopes_restore_the_outer_budget() {
        let outer = Fuel::unlimited();
        let inner = Fuel::unlimited();
        with_fuel(&outer, || {
            checkpoint(1);
            with_fuel(&inner, || checkpoint(5));
            checkpoint(1);
        });
        assert_eq!(outer.spent(), 2);
        assert_eq!(inner.spent(), 5);
    }
}
