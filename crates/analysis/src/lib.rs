//! # fcc-analysis — program analyses and core data structures
//!
//! Everything the coalescing algorithms consume:
//!
//! * [`bitset::BitSet`] — dense sets for liveness and interference rows;
//! * [`bitmatrix::TriangularBitMatrix`] — the `n²/2`-bit symmetric relation
//!   underlying Chaitin-style interference graphs;
//! * [`unionfind::UnionFind`] — `O(n·α(n))` disjoint sets for φ-webs and
//!   live-range identification;
//! * [`domtree::DomTree`] — Cooper–Harvey–Kennedy dominators, with the
//!   preorder / max-preorder numbering (Tarjan) that gives the O(1)
//!   dominance test used throughout the paper;
//! * [`domtree::DominanceFrontiers`] — for SSA φ placement;
//! * [`liveness::Liveness`] — φ-aware backward dataflow: φ arguments are
//!   live-out of their predecessor, never live-in at the φ's block;
//! * [`loops::LoopNesting`] — natural-loop depths for the Briggs
//!   "innermost loops first" coalescing heuristic;
//! * [`pressure::Pressure`] — per-point register pressure via the shared
//!   [`pressure::for_each_point`] walk: per-block maxima and the
//!   function-level MaxLive that certifies colourability under SSA;
//! * [`manager::AnalysisManager`] — epoch-keyed caching of all of the
//!   above, with [`manager::PreservedAnalyses`]-driven invalidation, so
//!   pipelines recompute an analysis only when the function changed;
//! * [`fuel::Fuel`] — thread-installed step budgets that bound every
//!   fixpoint loop in the workspace, unwinding with a typed
//!   [`fuel::FuelExhausted`] payload the batch driver catches;
//! * [`fault`] — the process-global fault-injection registry used to
//!   exercise the driver's recovery ladder with real faults.
//!
//! ## Example
//!
//! ```
//! use fcc_ir::{parse::parse_function, ControlFlowGraph};
//! use fcc_analysis::{domtree::DomTree, liveness::Liveness};
//!
//! let f = parse_function(
//!     "function @f(0) {
//!      b0:
//!          v0 = const 1
//!          jump b1
//!      b1:
//!          return v0
//!      }",
//! ).unwrap();
//! let cfg = ControlFlowGraph::compute(&f);
//! let dt = DomTree::compute(&f, &cfg);
//! let live = Liveness::compute(&f, &cfg);
//! assert!(dt.dominates(f.entry(), fcc_ir::Block::new(1)));
//! assert!(live.is_live_out(fcc_ir::Value::new(0), f.entry()));
//! ```

pub mod bitmatrix;
pub mod bitset;
pub mod domtree;
pub mod fault;
pub mod fuel;
pub mod liveness;
pub mod loops;
pub mod manager;
pub mod pressure;
pub mod unionfind;

pub use bitmatrix::TriangularBitMatrix;
pub use bitset::BitSet;
pub use domtree::{DomTree, DominanceFrontiers};
pub use fuel::{Deadline, DeadlineExceeded, Fuel, FuelExhausted};
pub use liveness::Liveness;
pub use loops::LoopNesting;
pub use manager::{AnalysisCounters, AnalysisManager, HitMiss, PreservedAnalyses};
pub use pressure::Pressure;
pub use unionfind::UnionFind;
