//! A triangular bit matrix for symmetric relations.
//!
//! Chaitin-style interference graphs store the symmetric "interferes with"
//! relation in exactly this shape: one bit per unordered pair, `n·(n-1)/2`
//! bits total (`n²/2` in the paper's prose). The paper's Briggs\*
//! improvement (Section 4.1) is entirely about how many rows `n` this
//! matrix is built with, so the type reports its allocation size exactly.

/// A symmetric boolean relation over `0..n`, stored as a strictly lower
/// triangular bit matrix. The diagonal is not stored: `relates(i, i)` is
/// always `false`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TriangularBitMatrix {
    words: Vec<u64>,
    n: usize,
}

#[inline]
fn pair_index(i: usize, j: usize) -> usize {
    // Requires i > j: index into the packed strict lower triangle.
    i * (i - 1) / 2 + j
}

impl TriangularBitMatrix {
    /// Create an empty relation over `0..n`.
    pub fn new(n: usize) -> Self {
        let bits = n * n.saturating_sub(1) / 2;
        TriangularBitMatrix {
            words: vec![0; bits.div_ceil(64)],
            n,
        }
    }

    /// The number of rows/columns.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Mark `i` and `j` as related. Diagonal requests are ignored.
    /// Returns `true` if the pair was newly added.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    pub fn add(&mut self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "pair ({i},{j}) out of range {}",
            self.n
        );
        if i == j {
            return false;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        let idx = pair_index(hi, lo);
        let w = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Whether `i` and `j` are related. The diagonal reads `false`.
    pub fn relates(&self, i: usize, j: usize) -> bool {
        if i == j || i >= self.n || j >= self.n {
            return false;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        let idx = pair_index(hi, lo);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Clear the relation (keeping the allocation). This is the `n²/2`-bit
    /// clearing cost that Cooper et al. identify as a significant fraction
    /// of a graph-colouring allocator's runtime.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of related pairs.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap bytes used by the bit storage — the paper's Table 1 metric.
    pub fn bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_irreflexive() {
        let mut m = TriangularBitMatrix::new(5);
        assert!(m.add(1, 3));
        assert!(m.relates(1, 3));
        assert!(m.relates(3, 1), "relation is symmetric");
        assert!(!m.add(3, 1), "same pair is not fresh");
        assert!(!m.add(2, 2));
        assert!(!m.relates(2, 2));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn all_pairs_distinct_slots() {
        let n = 40;
        let mut m = TriangularBitMatrix::new(n);
        for i in 0..n {
            for j in 0..i {
                assert!(m.add(i, j), "({i},{j}) collided with an earlier pair");
            }
        }
        assert_eq!(m.count(), n * (n - 1) / 2);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(m.relates(i, j), i != j);
            }
        }
    }

    #[test]
    fn clear_keeps_dim() {
        let mut m = TriangularBitMatrix::new(10);
        m.add(9, 0);
        m.clear();
        assert_eq!(m.count(), 0);
        assert_eq!(m.dim(), 10);
        assert!(!m.relates(9, 0));
    }

    #[test]
    fn zero_and_one_dim() {
        let m0 = TriangularBitMatrix::new(0);
        assert_eq!(m0.bytes(), 0);
        let m1 = TriangularBitMatrix::new(1);
        assert!(!m1.relates(0, 0));
    }

    #[test]
    fn bytes_grow_quadratically() {
        let small = TriangularBitMatrix::new(100).bytes();
        let big = TriangularBitMatrix::new(1000).bytes();
        // 10x rows => ~100x bits.
        assert!(big > small * 50, "small={small} big={big}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_panics() {
        TriangularBitMatrix::new(3).add(3, 0);
    }
}
