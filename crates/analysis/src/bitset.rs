//! A dense, fixed-universe bit set.
//!
//! Liveness sets and interference rows are sets over a dense index space
//! (values, live ranges), so a flat `u64` word vector beats any generic
//! set. The set tracks its universe size for exact byte accounting — the
//! memory comparisons in Tables 1 and 3 of the paper come down to how many
//! of these words each algorithm allocates.

/// A set of `usize` elements drawn from a fixed universe `0..len`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl Default for BitSet {
    /// The empty set over the empty universe. Exists so that `BitSet` can
    /// live in a `SecondaryMap`; resize by assigning `BitSet::new(n)`.
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl BitSet {
    /// Create an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The universe size this set was created with.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Insert `i`. Returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Remove `i`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self |= other`. Returns `true` if `self` changed.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self -= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether `self` and `other` share any element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Iterate over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Heap bytes used by the word storage.
    pub fn bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// Iterator over set elements, produced by [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect into a set whose universe is one past the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let elems: Vec<usize> = iter.into_iter().collect();
        let len = elems.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(len);
        for e in elems {
            s.insert(e);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports no change");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert!(!s.contains(129));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(3);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn intersect_and_difference() {
        let mut a: BitSet = [1, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2, 64].into_iter().collect();
        let mut a2 = a.clone();
        // Universe sizes differ (4+1=65 both since max 64) — they match here.
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 64]);
        a2.difference_with(&b);
        assert_eq!(a2.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn intersects_detects_overlap() {
        let a: BitSet = [5, 70].into_iter().collect();
        let mut b = BitSet::new(71);
        b.insert(70);
        assert!(a.intersects(&b));
        let mut c = BitSet::new(71);
        c.insert(6);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn iter_in_order_across_words() {
        let elems = [0usize, 1, 63, 64, 65, 127, 128];
        let s: BitSet = elems.into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), elems.to_vec());
    }

    #[test]
    fn empty_and_clear() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let mut t = BitSet::new(10);
        t.insert(5);
        t.clear();
        assert!(t.is_empty());
    }
}
