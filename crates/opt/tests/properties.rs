//! The optimiser must preserve behaviour on generated programs, alone
//! and composed with the coalescing pipeline.

use fcc_core::coalesce_ssa;
use fcc_ir::Function;
use fcc_opt::{aggressive_pipeline, simplify_cfg, standard_pipeline};
use fcc_ssa::{build_ssa, verify_ssa, SsaFlavor};
use fcc_workloads::{generate, GenConfig};

fn run_f(f: &Function, args: &[i64]) -> (Option<i64>, Vec<i64>) {
    let out = fcc_interp::run_with_memory(f, args, vec![0; 256], 20_000_000)
        .expect("generated programs terminate");
    (out.ret, out.memory)
}

#[test]
fn optimizer_preserves_generated_programs() {
    let cfg = GenConfig::default();
    for seed in 0..120u64 {
        let prog = generate(seed, &cfg);
        let base = fcc_frontend::lower_program(&prog).unwrap();
        let args = [seed as i64 % 13, 3];
        let reference = run_f(&base, &args);

        let mut f = base.clone();
        build_ssa(&mut f, SsaFlavor::Pruned, true);
        standard_pipeline().run_standalone(&mut f);
        fcc_ir::verify::verify_function(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            reference,
            run_f(&f, &args),
            "seed {seed}: optimizer miscompiled"
        );

        // The aggressive pipeline (with value numbering) too.
        let mut g = base.clone();
        build_ssa(&mut g, SsaFlavor::Pruned, true);
        aggressive_pipeline().run_standalone(&mut g);
        fcc_ir::verify::verify_function(&g).unwrap_or_else(|e| panic!("seed {seed} gvn: {e}"));
        assert_eq!(
            reference,
            run_f(&g, &args),
            "seed {seed}: gvn pipeline miscompiled"
        );
        coalesce_ssa(&mut g);
        assert_eq!(
            reference,
            run_f(&g, &args),
            "seed {seed}: post-gvn coalesce miscompiled"
        );

        // Optimised SSA must still be valid SSA if φs remain.
        verify_ssa(&f).unwrap_or_else(|e| panic!("seed {seed}: optimized SSA invalid: {e}"));

        // And the coalescer must still handle optimised SSA.
        coalesce_ssa(&mut f);
        assert!(!f.has_phis(), "seed {seed}");
        assert_eq!(
            reference,
            run_f(&f, &args),
            "seed {seed}: post-opt coalesce miscompiled"
        );

        // Final cleanup round on the φ-free code.
        simplify_cfg(&mut f);
        fcc_ir::verify::verify_function(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            reference,
            run_f(&f, &args),
            "seed {seed}: simplify-cfg miscompiled"
        );
    }
}

#[test]
fn optimizer_shrinks_kernels_without_changing_them() {
    for k in fcc_workloads::kernels() {
        let base = fcc_workloads::compile_kernel(k);
        let reference = fcc_workloads::reference_run(&base, k).unwrap();
        let mut f = base.clone();
        build_ssa(&mut f, SsaFlavor::Pruned, true);
        let before = f.live_inst_count();
        standard_pipeline().run_standalone(&mut f);
        let after = f.live_inst_count();
        assert!(after <= before, "{}: optimizer grew the code", k.name);
        let out = fcc_workloads::reference_run(&f, k).unwrap();
        assert_eq!(reference.behavior(), out.behavior(), "{}", k.name);
    }
}

#[test]
fn full_stack_source_to_allocated_registers() {
    // MiniLang → SSA → optimise → coalesce → simplify → colour: the whole
    // library working together on every kernel, k = 8 registers.
    for k in fcc_workloads::kernels().iter().take(6) {
        let mut f = fcc_workloads::compile_kernel(k);
        let reference = fcc_workloads::reference_run(&f, k).unwrap();
        build_ssa(&mut f, SsaFlavor::Pruned, true);
        standard_pipeline().run_standalone(&mut f);
        coalesce_ssa(&mut f);
        simplify_cfg(&mut f);
        let out = fcc_workloads::reference_run(&f, k).unwrap();
        assert_eq!(reference.behavior(), out.behavior(), "{}", k.name);
    }
}
