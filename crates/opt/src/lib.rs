//! # fcc-opt — scalar optimisation passes
//!
//! The optimizer context the paper's algorithm slots into ("It can be
//! used as a standalone pass of an optimizer. It can replace the current
//! copy-insertion phase of an optimizer's SSA implementation."):
//!
//! * [`dce::dead_code_elim`] — the pass the paper invokes to clean up
//!   strictness initialisations (Section 2);
//! * [`constfold::const_fold`] — sparse constant folding with branch
//!   resolution and φ pruning (SSA);
//! * [`copyprop::copy_propagate`] — standalone copy folding (SSA);
//! * [`gvn::value_number`] — dominator-based global value numbering
//!   (Briggs–Cooper–Simpson scoped-table DVNT);
//! * [`range_fold::range_fold`] — analysis-guided folding on top of the
//!   `fcc-dataflow` sparse engine: SCCP verdicts, value ranges, and
//!   known bits prove constants and dead branches that syntactic
//!   folding cannot see (SSA);
//! * [`memopt`] — store-to-load forwarding, redundant-load
//!   elimination, and dead-store elimination, gated on the `fcc-alias`
//!   verdicts (SSA);
//! * [`simplify_cfg::simplify_cfg`] — block merging / jump threading,
//!   undoing the critical-edge splits once destruction no longer needs
//!   them;
//! * [`Pass`] / [`PassManager`] — a fixpoint pipeline driver that
//!   threads a shared [`fcc_analysis::AnalysisManager`] through the
//!   passes and invalidates it according to each pass's [`PassEffect`].
//!
//! ## Example
//!
//! ```
//! use fcc_ir::parse::parse_function;
//! use fcc_opt::{standard_pipeline, PassManager};
//!
//! let mut f = parse_function(
//!     "function @x(0) {
//!      b0:
//!          v0 = const 6
//!          v1 = const 7
//!          v2 = mul v0, v1
//!          v3 = add v2, v2  ; dead
//!          return v2
//!      }",
//! ).unwrap();
//! standard_pipeline().run_standalone(&mut f);
//! assert_eq!(f.live_inst_count(), 2, "const 42 + return");
//! ```

pub mod constfold;
pub mod copyprop;
pub mod dce;
pub mod fault;
pub mod gvn;
pub mod memopt;
pub mod range_fold;
pub mod simplify_cfg;

pub use constfold::{const_fold, const_fold_with, FoldStats};
pub use copyprop::copy_propagate;
pub use dce::dead_code_elim;
pub use gvn::{value_number, value_number_with, GvnStats};
pub use memopt::{
    dead_store_elim, dead_store_elim_with, redundant_load_elim, redundant_load_elim_with,
    store_forward, store_forward_web_safe_with, store_forward_with,
};
pub use range_fold::{range_fold, range_fold_with, RangeFoldStats};
pub use simplify_cfg::{simplify_cfg, simplify_cfg_with};

use fcc_analysis::{AnalysisManager, PreservedAnalyses};
use fcc_ir::Function;

/// What a pass did to the function, and which analyses it left intact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PassEffect {
    /// Whether anything changed.
    pub changed: bool,
    /// The analyses still valid for the post-pass function. Ignored when
    /// `changed` is false (everything is preserved then — even if the
    /// pass conservatively bumped the epoch, e.g. through `inst_mut`).
    pub preserved: PreservedAnalyses,
}

impl PassEffect {
    /// The pass did not touch the function.
    pub fn unchanged() -> Self {
        PassEffect {
            changed: false,
            preserved: PreservedAnalyses::all(),
        }
    }

    /// The pass changed the function, keeping `preserved` valid.
    pub fn changed(preserved: PreservedAnalyses) -> Self {
        PassEffect {
            changed: true,
            preserved,
        }
    }
}

/// A named transformation over a function.
///
/// Passes pull whatever analyses they need from the [`AnalysisManager`]
/// and report what they preserved; the [`PassManager`] applies the
/// matching invalidation after each run, so a CFG-preserving rewrite
/// (constant folding without branch resolution, copy propagation, value
/// numbering) hands the still-valid dominator tree to the next pass.
pub trait Pass {
    /// Human-readable pass name, for logs and stats.
    fn name(&self) -> &'static str;
    /// Run once; report what changed and what survived.
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect;
}

/// A [`Pass`] wrapper; see [`dce::dead_code_elim`].
pub struct Dce;
impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run(&self, func: &mut Function, _am: &mut AnalysisManager) -> PassEffect {
        if dead_code_elim(func) > 0 {
            // Deletes instructions only: every edge stays.
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`constfold::const_fold`].
pub struct ConstFold;
impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        let s = const_fold_with(func, am);
        if s.folded + s.branches_resolved + s.phis_collapsed == 0 {
            PassEffect::unchanged()
        } else if s.branches_resolved + s.blocks_removed == 0 {
            // Pure instruction rewrites: the CFG shape is untouched.
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::changed(PreservedAnalyses::none())
        }
    }
}

/// A [`Pass`] wrapper; see [`copyprop::copy_propagate`].
pub struct CopyProp;
impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copyprop"
    }
    fn run(&self, func: &mut Function, _am: &mut AnalysisManager) -> PassEffect {
        if copy_propagate(func) > 0 {
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`gvn::value_number`].
pub struct Gvn;
impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        let s = value_number_with(func, am);
        if s.redundant_removed + s.copies_forwarded + s.phis_collapsed > 0 {
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`range_fold::range_fold`].
pub struct RangeFold;
impl Pass for RangeFold {
    fn name(&self) -> &'static str {
        "range-fold"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        let s = range_fold_with(func, am);
        if s.folded + s.branches_resolved + s.phis_collapsed == 0 {
            PassEffect::unchanged()
        } else if s.branches_resolved + s.blocks_removed == 0 {
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::changed(PreservedAnalyses::none())
        }
    }
}

/// A [`Pass`] wrapper; see [`memopt::store_forward`]. The default is
/// unrestricted; [`StoreForward::web_safe`] refuses to forward
/// φ-involved values (see [`memopt::store_forward_web_safe_with`]) and
/// is what [`copy_preserving_pipeline`] registers.
#[derive(Default)]
pub struct StoreForward {
    web_safe: bool,
}
impl StoreForward {
    /// The φ-web-preserving variant for code headed into
    /// `destruct_via_webs`.
    pub fn web_safe() -> StoreForward {
        StoreForward { web_safe: true }
    }
}
impl Pass for StoreForward {
    fn name(&self) -> &'static str {
        "store-forward"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        let n = if self.web_safe {
            memopt::store_forward_web_safe_with(func, am)
        } else {
            store_forward_with(func, am)
        };
        if n > 0 {
            // Loads become copies in place: every block and edge stays.
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`memopt::redundant_load_elim`].
pub struct RedundantLoadElim;
impl Pass for RedundantLoadElim {
    fn name(&self) -> &'static str {
        "redundant-load-elim"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        if redundant_load_elim_with(func, am) > 0 {
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`memopt::dead_store_elim`].
pub struct DeadStoreElim;
impl Pass for DeadStoreElim {
    fn name(&self) -> &'static str {
        "dead-store-elim"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        if dead_store_elim_with(func, am) > 0 {
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`simplify_cfg::simplify_cfg`].
pub struct SimplifyCfg;
impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplify-cfg"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        if simplify_cfg_with(func, am) > 0 {
            PassEffect::changed(PreservedAnalyses::none())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// Per-pass totals across one pipeline run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassStat {
    /// The pass name, as reported by [`Pass::name`].
    pub name: &'static str,
    /// Rounds in which the pass reported a change.
    pub applications: usize,
    /// Net live instructions removed while this pass ran — negative
    /// when the pass grew the function (e.g. edge splitting).
    pub insts_removed: i64,
}

/// What [`PassManager::run`] reports: rounds to fixpoint plus per-pass
/// application counts and instruction deltas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Full pipeline iterations until the confirming (no-change) round.
    pub rounds: usize,
    /// One entry per pipeline pass, in pipeline order.
    pub passes: Vec<PassStat>,
}

impl RunSummary {
    /// How many rounds the named pass changed the function.
    pub fn applications(&self, name: &str) -> usize {
        self.passes
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.applications)
    }

    /// Net live instructions the named pass removed.
    pub fn insts_removed(&self, name: &str) -> i64 {
        self.passes
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.insts_removed)
    }

    /// Net live instructions removed by the whole pipeline.
    pub fn total_insts_removed(&self) -> i64 {
        self.passes.iter().map(|p| p.insts_removed).sum()
    }

    /// A one-pass-per-line breakdown for `fcc --report`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "optimiser: {} round(s), {} instruction(s) removed",
            self.rounds,
            self.total_insts_removed()
        );
        for p in &self.passes {
            let _ = writeln!(
                s,
                "  {:<12} applied {}x, removed {} instruction(s)",
                p.name, p.applications, p.insts_removed
            );
        }
        s
    }
}

/// Runs a pass list repeatedly until no pass changes anything.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Safety bound on full-pipeline iterations.
    pub max_rounds: usize,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            max_rounds: 8,
        }
    }

    /// Append a pass.
    pub fn with(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Run to fixpoint against a shared analysis cache. After each pass
    /// the cache is invalidated according to the pass's [`PassEffect`].
    pub fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> RunSummary {
        let mut passes = self.fresh_stats();
        for round in 1..=self.max_rounds {
            let mut changed = false;
            for (i, p) in self.passes.iter().enumerate() {
                let before = func.epoch();
                let live_before = func.live_inst_count() as i64;
                fcc_analysis::fuel::set_pass(p.name());
                fcc_analysis::fault::maybe_panic(p.name());
                let effect = p.run(func, am);
                fcc_analysis::fuel::checkpoint(1);
                let mut pass_changed = effect.changed;
                let mut preserved = if pass_changed {
                    effect.preserved
                } else {
                    PreservedAnalyses::all()
                };
                if fault::maybe_corrupt(p.name(), func) {
                    pass_changed = true;
                    preserved = PreservedAnalyses::none();
                }
                am.invalidate(func, before, preserved);
                if pass_changed {
                    passes[i].applications += 1;
                    passes[i].insts_removed += live_before - func.live_inst_count() as i64;
                    changed = true;
                }
            }
            if !changed {
                return RunSummary {
                    rounds: round,
                    passes,
                };
            }
        }
        RunSummary {
            rounds: self.max_rounds,
            passes,
        }
    }

    /// [`Self::run`] with a private, throwaway analysis cache — for
    /// callers that have no manager of their own.
    pub fn run_standalone(&self, func: &mut Function) -> RunSummary {
        let mut am = AnalysisManager::new();
        self.run(func, &mut am)
    }

    fn fresh_stats(&self) -> Vec<PassStat> {
        self.passes
            .iter()
            .map(|p| PassStat {
                name: p.name(),
                applications: 0,
                insts_removed: 0,
            })
            .collect()
    }

    /// [`Self::run`] in `--verify-each` mode: the `fcc-lint` rule suite
    /// runs over the function before the first pass and again after
    /// every pass that changed it, at `stage`. The first error-severity
    /// diagnostic aborts the pipeline and names the offending pass (or
    /// `"<input>"` when the function was broken on arrival).
    ///
    /// Each check uses a fresh analysis cache, deliberately: a pass that
    /// lied about its [`PreservedAnalyses`] would otherwise hand the
    /// linter the same stale analyses it handed the next pass, masking
    /// the breakage the mode exists to catch.
    pub fn run_verified(
        &self,
        func: &mut Function,
        am: &mut AnalysisManager,
        stage: fcc_lint::LintStage,
    ) -> Result<RunSummary, PipelineViolation> {
        let lint = |func: &Function, pass: &'static str, round: usize| {
            let report = fcc_lint::lint_function(func, &mut AnalysisManager::new(), stage);
            if report.has_errors() {
                Err(PipelineViolation {
                    pass,
                    round,
                    report,
                })
            } else {
                Ok(())
            }
        };
        fcc_analysis::fuel::set_pass("<input>");
        lint(func, "<input>", 0)?;
        let mut passes = self.fresh_stats();
        for round in 1..=self.max_rounds {
            let mut changed = false;
            for (i, p) in self.passes.iter().enumerate() {
                let before = func.epoch();
                let live_before = func.live_inst_count() as i64;
                fcc_analysis::fuel::set_pass(p.name());
                fcc_analysis::fault::maybe_panic(p.name());
                let effect = p.run(func, am);
                fcc_analysis::fuel::checkpoint(1);
                let mut pass_changed = effect.changed;
                let mut preserved = if pass_changed {
                    effect.preserved
                } else {
                    PreservedAnalyses::all()
                };
                if fault::maybe_corrupt(p.name(), func) {
                    pass_changed = true;
                    preserved = PreservedAnalyses::none();
                }
                am.invalidate(func, before, preserved);
                if pass_changed {
                    passes[i].applications += 1;
                    passes[i].insts_removed += live_before - func.live_inst_count() as i64;
                    changed = true;
                    lint(func, p.name(), round)?;
                }
            }
            if !changed {
                return Ok(RunSummary {
                    rounds: round,
                    passes,
                });
            }
        }
        Ok(RunSummary {
            rounds: self.max_rounds,
            passes,
        })
    }
}

/// A `--verify-each` pipeline abort: `pass` left the function violating
/// the lint suite in `round`.
#[derive(Debug)]
pub struct PipelineViolation {
    /// The pass that broke the invariant, or `"<input>"` when the
    /// function failed the suite before any pass ran.
    pub pass: &'static str,
    /// The 1-based fixpoint round (0 for `"<input>"`).
    pub round: usize,
    /// The failing lint report.
    pub report: fcc_lint::LintReport,
}

impl std::fmt::Display for PipelineViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.pass == "<input>" {
            write!(
                f,
                "function failed the lint suite before any pass ran ({} error(s))",
                self.report.error_count()
            )
        } else {
            write!(
                f,
                "pass '{}' broke a lint invariant in round {} ({} error(s))",
                self.pass,
                self.round,
                self.report.error_count()
            )
        }
    }
}

impl std::error::Error for PipelineViolation {}

/// The standard SSA optimisation pipeline: fold → propagate →
/// range-fold → memory (forward → load-elim → dead-store) → DCE →
/// simplify, to fixpoint.
pub fn standard_pipeline() -> PassManager {
    PassManager::new()
        .with(ConstFold)
        .with(CopyProp)
        .with(RangeFold)
        .with(StoreForward::default())
        .with(RedundantLoadElim)
        .with(DeadStoreElim)
        .with(Dce)
        .with(SimplifyCfg)
}

/// The standard pipeline minus copy propagation, for code headed into
/// φ-web live-range identification (`fcc_regalloc::destruct_via_webs`,
/// the Chaitin/Briggs comparator). That path is only sound while every
/// φ web corresponds to one source variable, which holds exactly as
/// long as no copy has been folded into a φ argument — `CopyProp` is
/// standalone copy folding and re-creates the interfering webs the
/// `--no-fold` flag exists to avoid, so it must stay out of this
/// pipeline. The coalescing destruction paths don't need the
/// restriction; use [`standard_pipeline`] there.
///
/// The memory passes stay in: they *introduce* plain copies (of a
/// stored or previously-loaded value) but never fold one away, and
/// φ-web unioning follows φ arguments only, so a fresh copy cannot
/// merge two source variables' webs.
pub fn copy_preserving_pipeline() -> PassManager {
    PassManager::new()
        .with(ConstFold)
        .with(RangeFold)
        .with(StoreForward::web_safe())
        .with(RedundantLoadElim)
        .with(DeadStoreElim)
        .with(Dce)
        .with(SimplifyCfg)
}

/// The aggressive SSA pipeline: value numbering added in front of the
/// standard passes.
pub fn aggressive_pipeline() -> PassManager {
    PassManager::new()
        .with(Gvn)
        .with(ConstFold)
        .with(CopyProp)
        .with(RangeFold)
        .with(StoreForward::default())
        .with(RedundantLoadElim)
        .with(DeadStoreElim)
        .with(Dce)
        .with(SimplifyCfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;

    #[test]
    fn pipeline_reaches_fixpoint_and_reports() {
        let mut f = parse_function(
            "function @p(0) {
             b0:
                 v0 = const 2
                 v1 = const 3
                 v2 = mul v0, v1
                 v3 = copy v2
                 v4 = add v3, v0
                 jump b1
             b1:
                 return v4
             }",
        )
        .unwrap();
        let summary = standard_pipeline().run_standalone(&mut f);
        assert!(summary.rounds >= 2, "fixpoint requires a confirming round");
        assert!(summary.applications("constfold") > 0);
        assert!(summary.total_insts_removed() > 0);
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[]).unwrap().ret, Some(8));
        // Everything folds to `const 8; return`.
        assert_eq!(f.live_inst_count(), 2, "{f}");
        assert_eq!(f.blocks().count(), 1);
    }

    #[test]
    fn verify_each_accepts_a_clean_pipeline() {
        let mut f = parse_function(
            "function @v(1) {
             b0:
                 v0 = param 0
                 v1 = const 1
                 v2 = add v0, v1
                 v3 = copy v2
                 return v3
             }",
        )
        .unwrap();
        let mut am = AnalysisManager::new();
        let r = standard_pipeline().run_verified(&mut f, &mut am, fcc_lint::LintStage::Ssa);
        assert!(r.is_ok(), "{}", r.unwrap_err());
        verify_function(&f).unwrap();
    }

    #[test]
    fn verify_each_rejects_broken_input() {
        // Use before any definition: the input itself fails the suite.
        let mut f = parse_function(
            "function @b(0) {
             b0:
                 v1 = add v0, v0
                 return v1
             }",
        )
        .unwrap();
        let mut am = AnalysisManager::new();
        let err = standard_pipeline()
            .run_verified(&mut f, &mut am, fcc_lint::LintStage::Ssa)
            .unwrap_err();
        assert_eq!(err.pass, "<input>");
        assert_eq!(err.round, 0);
    }

    /// A deliberately wrong "φ elimination": replaces every φ with its
    /// first argument, which does not dominate the join. Seeds the
    /// dominance violation `--verify-each` exists to attribute.
    struct BogusPhiElim;
    impl Pass for BogusPhiElim {
        fn name(&self) -> &'static str {
            "bogus-phi-elim"
        }
        fn run(&self, func: &mut Function, _am: &mut AnalysisManager) -> PassEffect {
            use fcc_ir::InstKind;
            let mut replaced = false;
            let blocks: Vec<_> = func.blocks().collect();
            for b in &blocks {
                let phis: Vec<_> = func.block_phis(*b).collect();
                for phi in phis {
                    let data = func.inst(phi);
                    let dst = data.dst.expect("phi defines");
                    let InstKind::Phi { args } = &data.kind else {
                        continue;
                    };
                    let rep = args[0].value;
                    for &bb in &blocks {
                        for i in func.block_insts(bb).to_vec() {
                            let kind = &mut func.inst_mut(i).kind;
                            kind.for_each_use_mut(|v| {
                                if *v == dst {
                                    *v = rep;
                                }
                            });
                            if let InstKind::Phi { args } = kind {
                                for a in args.iter_mut() {
                                    if a.value == dst {
                                        a.value = rep;
                                    }
                                }
                            }
                        }
                    }
                    func.remove_inst(*b, phi);
                    replaced = true;
                }
            }
            if replaced {
                PassEffect::changed(PreservedAnalyses::none())
            } else {
                PassEffect::unchanged()
            }
        }
    }

    #[test]
    fn verify_each_names_the_offending_pass() {
        let mut f = parse_function(
            "function @d(1) {
             b0:
                 v0 = param 0
                 branch v0, b1, b2
             b1:
                 v1 = const 2
                 jump b3
             b2:
                 v2 = const 3
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }",
        )
        .unwrap();
        let mut am = AnalysisManager::new();
        let err = PassManager::new()
            .with(BogusPhiElim)
            .with(Dce)
            .run_verified(&mut f, &mut am, fcc_lint::LintStage::Ssa)
            .unwrap_err();
        assert_eq!(err.pass, "bogus-phi-elim");
        assert_eq!(err.round, 1);
        assert!(
            err.report
                .diagnostics
                .iter()
                .any(|d| d.rule == "ssa-dominance"),
            "{:?}",
            err.report
        );
        assert!(err.to_string().contains("bogus-phi-elim"));
    }

    #[test]
    fn pipeline_is_idempotent() {
        let mut f = parse_function(
            "function @i(1) {
             b0:
                 v0 = param 0
                 v1 = const 1
                 v2 = add v0, v1
                 return v2
             }",
        )
        .unwrap();
        standard_pipeline().run_standalone(&mut f);
        let once = f.to_string();
        standard_pipeline().run_standalone(&mut f);
        assert_eq!(once, f.to_string());
    }
}
