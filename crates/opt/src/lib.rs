//! # fcc-opt — scalar optimisation passes
//!
//! The optimizer context the paper's algorithm slots into ("It can be
//! used as a standalone pass of an optimizer. It can replace the current
//! copy-insertion phase of an optimizer's SSA implementation."):
//!
//! * [`dce::dead_code_elim`] — the pass the paper invokes to clean up
//!   strictness initialisations (Section 2);
//! * [`constfold::const_fold`] — sparse constant folding with branch
//!   resolution and φ pruning (SSA);
//! * [`copyprop::copy_propagate`] — standalone copy folding (SSA);
//! * [`gvn::value_number`] — dominator-based global value numbering
//!   (Briggs–Cooper–Simpson scoped-table DVNT);
//! * [`simplify_cfg::simplify_cfg`] — block merging / jump threading,
//!   undoing the critical-edge splits once destruction no longer needs
//!   them;
//! * [`Pass`] / [`PassManager`] — a tiny fixpoint pipeline driver.
//!
//! ## Example
//!
//! ```
//! use fcc_ir::parse::parse_function;
//! use fcc_opt::{standard_pipeline, PassManager};
//!
//! let mut f = parse_function(
//!     "function @x(0) {
//!      b0:
//!          v0 = const 6
//!          v1 = const 7
//!          v2 = mul v0, v1
//!          v3 = add v2, v2  ; dead
//!          return v2
//!      }",
//! ).unwrap();
//! standard_pipeline().run(&mut f);
//! assert_eq!(f.live_inst_count(), 2, "const 42 + return");
//! ```

pub mod constfold;
pub mod copyprop;
pub mod dce;
pub mod gvn;
pub mod simplify_cfg;

pub use constfold::{const_fold, FoldStats};
pub use copyprop::copy_propagate;
pub use dce::dead_code_elim;
pub use gvn::{value_number, GvnStats};
pub use simplify_cfg::simplify_cfg;

use fcc_ir::Function;

/// A named transformation over a function.
pub trait Pass {
    /// Human-readable pass name, for logs and stats.
    fn name(&self) -> &'static str;
    /// Run once; report whether anything changed.
    fn run(&self, func: &mut Function) -> bool;
}

macro_rules! fn_pass {
    ($struct_name:ident, $name:literal, $f:expr) => {
        /// A [`Pass`] wrapper; see the module of the wrapped function.
        pub struct $struct_name;
        impl Pass for $struct_name {
            fn name(&self) -> &'static str {
                $name
            }
            fn run(&self, func: &mut Function) -> bool {
                #[allow(clippy::redundant_closure_call)]
                ($f)(func)
            }
        }
    };
}

fn_pass!(Dce, "dce", |f: &mut Function| dead_code_elim(f) > 0);
fn_pass!(ConstFold, "constfold", |f: &mut Function| {
    let s = const_fold(f);
    s.folded + s.branches_resolved + s.phis_collapsed > 0
});
fn_pass!(CopyProp, "copyprop", |f: &mut Function| copy_propagate(f) > 0);
fn_pass!(Gvn, "gvn", |f: &mut Function| {
    let s = value_number(f);
    s.redundant_removed + s.copies_forwarded + s.phis_collapsed > 0
});
fn_pass!(SimplifyCfg, "simplify-cfg", |f: &mut Function| simplify_cfg(f) > 0);

/// Runs a pass list repeatedly until no pass changes anything.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Safety bound on full-pipeline iterations.
    pub max_rounds: usize,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager { passes: Vec::new(), max_rounds: 8 }
    }

    /// Append a pass.
    pub fn add(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Run to fixpoint. Returns `(rounds, per-pass change counts)`.
    pub fn run(&self, func: &mut Function) -> (usize, Vec<(&'static str, usize)>) {
        let mut counts: Vec<(&'static str, usize)> =
            self.passes.iter().map(|p| (p.name(), 0)).collect();
        for round in 1..=self.max_rounds {
            let mut changed = false;
            for (i, p) in self.passes.iter().enumerate() {
                if p.run(func) {
                    counts[i].1 += 1;
                    changed = true;
                }
            }
            if !changed {
                return (round, counts);
            }
        }
        (self.max_rounds, counts)
    }
}

/// The standard SSA optimisation pipeline: fold → propagate → DCE →
/// simplify, to fixpoint.
pub fn standard_pipeline() -> PassManager {
    PassManager::new().add(ConstFold).add(CopyProp).add(Dce).add(SimplifyCfg)
}

/// The aggressive SSA pipeline: value numbering added in front of the
/// standard passes.
pub fn aggressive_pipeline() -> PassManager {
    PassManager::new().add(Gvn).add(ConstFold).add(CopyProp).add(Dce).add(SimplifyCfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;

    #[test]
    fn pipeline_reaches_fixpoint_and_reports() {
        let mut f = parse_function(
            "function @p(0) {
             b0:
                 v0 = const 2
                 v1 = const 3
                 v2 = mul v0, v1
                 v3 = copy v2
                 v4 = add v3, v0
                 jump b1
             b1:
                 return v4
             }",
        )
        .unwrap();
        let (rounds, counts) = standard_pipeline().run(&mut f);
        assert!(rounds >= 2, "fixpoint requires a confirming round");
        assert!(counts.iter().any(|&(n, c)| n == "constfold" && c > 0));
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[]).unwrap().ret, Some(8));
        // Everything folds to `const 8; return`.
        assert_eq!(f.live_inst_count(), 2, "{f}");
        assert_eq!(f.blocks().count(), 1);
    }

    #[test]
    fn pipeline_is_idempotent() {
        let mut f = parse_function(
            "function @i(1) {
             b0:
                 v0 = param 0
                 v1 = const 1
                 v2 = add v0, v1
                 return v2
             }",
        )
        .unwrap();
        standard_pipeline().run(&mut f);
        let once = f.to_string();
        standard_pipeline().run(&mut f);
        assert_eq!(once, f.to_string());
    }
}
