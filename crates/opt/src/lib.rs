//! # fcc-opt — scalar optimisation passes
//!
//! The optimizer context the paper's algorithm slots into ("It can be
//! used as a standalone pass of an optimizer. It can replace the current
//! copy-insertion phase of an optimizer's SSA implementation."):
//!
//! * [`dce::dead_code_elim`] — the pass the paper invokes to clean up
//!   strictness initialisations (Section 2);
//! * [`constfold::const_fold`] — sparse constant folding with branch
//!   resolution and φ pruning (SSA);
//! * [`copyprop::copy_propagate`] — standalone copy folding (SSA);
//! * [`gvn::value_number`] — dominator-based global value numbering
//!   (Briggs–Cooper–Simpson scoped-table DVNT);
//! * [`simplify_cfg::simplify_cfg`] — block merging / jump threading,
//!   undoing the critical-edge splits once destruction no longer needs
//!   them;
//! * [`Pass`] / [`PassManager`] — a fixpoint pipeline driver that
//!   threads a shared [`fcc_analysis::AnalysisManager`] through the
//!   passes and invalidates it according to each pass's [`PassEffect`].
//!
//! ## Example
//!
//! ```
//! use fcc_ir::parse::parse_function;
//! use fcc_opt::{standard_pipeline, PassManager};
//!
//! let mut f = parse_function(
//!     "function @x(0) {
//!      b0:
//!          v0 = const 6
//!          v1 = const 7
//!          v2 = mul v0, v1
//!          v3 = add v2, v2  ; dead
//!          return v2
//!      }",
//! ).unwrap();
//! standard_pipeline().run_standalone(&mut f);
//! assert_eq!(f.live_inst_count(), 2, "const 42 + return");
//! ```

pub mod constfold;
pub mod copyprop;
pub mod dce;
pub mod gvn;
pub mod simplify_cfg;

pub use constfold::{const_fold, const_fold_with, FoldStats};
pub use copyprop::copy_propagate;
pub use dce::dead_code_elim;
pub use gvn::{value_number, value_number_with, GvnStats};
pub use simplify_cfg::{simplify_cfg, simplify_cfg_with};

use fcc_analysis::{AnalysisManager, PreservedAnalyses};
use fcc_ir::Function;

/// What a pass did to the function, and which analyses it left intact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PassEffect {
    /// Whether anything changed.
    pub changed: bool,
    /// The analyses still valid for the post-pass function. Ignored when
    /// `changed` is false (everything is preserved then — even if the
    /// pass conservatively bumped the epoch, e.g. through `inst_mut`).
    pub preserved: PreservedAnalyses,
}

impl PassEffect {
    /// The pass did not touch the function.
    pub fn unchanged() -> Self {
        PassEffect {
            changed: false,
            preserved: PreservedAnalyses::all(),
        }
    }

    /// The pass changed the function, keeping `preserved` valid.
    pub fn changed(preserved: PreservedAnalyses) -> Self {
        PassEffect {
            changed: true,
            preserved,
        }
    }
}

/// A named transformation over a function.
///
/// Passes pull whatever analyses they need from the [`AnalysisManager`]
/// and report what they preserved; the [`PassManager`] applies the
/// matching invalidation after each run, so a CFG-preserving rewrite
/// (constant folding without branch resolution, copy propagation, value
/// numbering) hands the still-valid dominator tree to the next pass.
pub trait Pass {
    /// Human-readable pass name, for logs and stats.
    fn name(&self) -> &'static str;
    /// Run once; report what changed and what survived.
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect;
}

/// A [`Pass`] wrapper; see [`dce::dead_code_elim`].
pub struct Dce;
impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run(&self, func: &mut Function, _am: &mut AnalysisManager) -> PassEffect {
        if dead_code_elim(func) > 0 {
            // Deletes instructions only: every edge stays.
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`constfold::const_fold`].
pub struct ConstFold;
impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        let s = const_fold_with(func, am);
        if s.folded + s.branches_resolved + s.phis_collapsed == 0 {
            PassEffect::unchanged()
        } else if s.branches_resolved + s.blocks_removed == 0 {
            // Pure instruction rewrites: the CFG shape is untouched.
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::changed(PreservedAnalyses::none())
        }
    }
}

/// A [`Pass`] wrapper; see [`copyprop::copy_propagate`].
pub struct CopyProp;
impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copyprop"
    }
    fn run(&self, func: &mut Function, _am: &mut AnalysisManager) -> PassEffect {
        if copy_propagate(func) > 0 {
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`gvn::value_number`].
pub struct Gvn;
impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        let s = value_number_with(func, am);
        if s.redundant_removed + s.copies_forwarded + s.phis_collapsed > 0 {
            PassEffect::changed(PreservedAnalyses::cfg_core())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// A [`Pass`] wrapper; see [`simplify_cfg::simplify_cfg`].
pub struct SimplifyCfg;
impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplify-cfg"
    }
    fn run(&self, func: &mut Function, am: &mut AnalysisManager) -> PassEffect {
        if simplify_cfg_with(func, am) > 0 {
            PassEffect::changed(PreservedAnalyses::none())
        } else {
            PassEffect::unchanged()
        }
    }
}

/// Runs a pass list repeatedly until no pass changes anything.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Safety bound on full-pipeline iterations.
    pub max_rounds: usize,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            max_rounds: 8,
        }
    }

    /// Append a pass.
    pub fn with(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Run to fixpoint against a shared analysis cache. After each pass
    /// the cache is invalidated according to the pass's [`PassEffect`].
    /// Returns `(rounds, per-pass change counts)`.
    pub fn run(
        &self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> (usize, Vec<(&'static str, usize)>) {
        let mut counts: Vec<(&'static str, usize)> =
            self.passes.iter().map(|p| (p.name(), 0)).collect();
        for round in 1..=self.max_rounds {
            let mut changed = false;
            for (i, p) in self.passes.iter().enumerate() {
                let before = func.epoch();
                let effect = p.run(func, am);
                let preserved = if effect.changed {
                    effect.preserved
                } else {
                    PreservedAnalyses::all()
                };
                am.invalidate(func, before, preserved);
                if effect.changed {
                    counts[i].1 += 1;
                    changed = true;
                }
            }
            if !changed {
                return (round, counts);
            }
        }
        (self.max_rounds, counts)
    }

    /// [`Self::run`] with a private, throwaway analysis cache — for
    /// callers that have no manager of their own.
    pub fn run_standalone(&self, func: &mut Function) -> (usize, Vec<(&'static str, usize)>) {
        let mut am = AnalysisManager::new();
        self.run(func, &mut am)
    }
}

/// The standard SSA optimisation pipeline: fold → propagate → DCE →
/// simplify, to fixpoint.
pub fn standard_pipeline() -> PassManager {
    PassManager::new()
        .with(ConstFold)
        .with(CopyProp)
        .with(Dce)
        .with(SimplifyCfg)
}

/// The aggressive SSA pipeline: value numbering added in front of the
/// standard passes.
pub fn aggressive_pipeline() -> PassManager {
    PassManager::new()
        .with(Gvn)
        .with(ConstFold)
        .with(CopyProp)
        .with(Dce)
        .with(SimplifyCfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;

    #[test]
    fn pipeline_reaches_fixpoint_and_reports() {
        let mut f = parse_function(
            "function @p(0) {
             b0:
                 v0 = const 2
                 v1 = const 3
                 v2 = mul v0, v1
                 v3 = copy v2
                 v4 = add v3, v0
                 jump b1
             b1:
                 return v4
             }",
        )
        .unwrap();
        let (rounds, counts) = standard_pipeline().run_standalone(&mut f);
        assert!(rounds >= 2, "fixpoint requires a confirming round");
        assert!(counts.iter().any(|&(n, c)| n == "constfold" && c > 0));
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[]).unwrap().ret, Some(8));
        // Everything folds to `const 8; return`.
        assert_eq!(f.live_inst_count(), 2, "{f}");
        assert_eq!(f.blocks().count(), 1);
    }

    #[test]
    fn pipeline_is_idempotent() {
        let mut f = parse_function(
            "function @i(1) {
             b0:
                 v0 = param 0
                 v1 = const 1
                 v2 = add v0, v1
                 return v2
             }",
        )
        .unwrap();
        standard_pipeline().run_standalone(&mut f);
        let once = f.to_string();
        standard_pipeline().run_standalone(&mut f);
        assert_eq!(once, f.to_string());
    }
}
