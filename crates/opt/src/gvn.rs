//! Dominator-based global value numbering (SSA only).
//!
//! The Briggs–Cooper–Simpson "dominator-tree value numbering technique":
//! walk the dominator tree with a scoped hash table from canonicalised
//! expressions to the value that first computed them. A recomputation in
//! a dominated block is deleted and its name forwarded. Commutative
//! operands are sorted; φs are de-duplicated within a block and
//! *meaningless* φs (all arguments identical after numbering) collapse to
//! their argument. Loads and stores are never numbered (the flat memory
//! is mutable state).
//!
//! This pass is classic Rice-compiler-group machinery — the same group
//! and infrastructure the paper's experiments ran in — and gives the
//! coalescing pipeline realistic pre-optimised input shapes.

use std::collections::HashMap;

use fcc_analysis::AnalysisManager;
use fcc_ir::{BinOp, Block, Function, Inst, InstKind, Value};

/// Statistics from one value-numbering run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GvnStats {
    /// Redundant pure computations removed.
    pub redundant_removed: usize,
    /// Copies forwarded.
    pub copies_forwarded: usize,
    /// φs collapsed (meaningless or duplicate).
    pub phis_collapsed: usize,
}

/// A canonical expression key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Key {
    Const(i64),
    Unary(fcc_ir::UnaryOp, Value),
    Binary(BinOp, Value, Value),
    /// φ keyed by block and (pred, numbered arg) pairs in pred order.
    Phi(Block, Vec<(Block, Value)>),
}

fn commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add
            | BinOp::Mul
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Min
            | BinOp::Max
    )
}

/// Run dominator-based value numbering over the SSA function `func`.
///
/// Redundant instructions are deleted and every use is rewritten to the
/// surviving name. Follow with [`crate::dce::dead_code_elim`] to collect
/// any newly dead code.
pub fn value_number(func: &mut Function) -> GvnStats {
    value_number_with(func, &mut AnalysisManager::new())
}

/// [`value_number`], pulling the dominator tree from a shared
/// [`AnalysisManager`] — a cache hit whenever an earlier pass already
/// computed it and preserved the CFG.
pub fn value_number_with(func: &mut Function, am: &mut AnalysisManager) -> GvnStats {
    let mut stats = GvnStats::default();
    let dt = am.domtree(func);
    let n = func.num_values();

    // vn[v] = canonical value for v (identity by default).
    let mut vn: Vec<Value> = (0..n).map(Value::new).collect();
    // Scoped expression table: one scope per open dominator-tree node.
    let mut scopes: Vec<HashMap<Key, Value>> = Vec::new();
    let mut to_delete: Vec<(Block, Inst)> = Vec::new();

    // Iterative preorder walk with explicit scope pops.
    enum Action {
        Visit(Block),
        Pop,
    }
    let mut work = vec![Action::Visit(func.entry())];
    while let Some(action) = work.pop() {
        match action {
            Action::Pop => {
                scopes.pop();
            }
            Action::Visit(b) => {
                scopes.push(HashMap::new());
                work.push(Action::Pop);
                for &c in dt.children(b).iter().rev() {
                    work.push(Action::Visit(c));
                }

                let insts: Vec<Inst> = func.block_insts(b).to_vec();
                for inst in insts {
                    let data = func.inst_mut(inst);
                    // Rewrite operands through vn first.
                    data.kind.for_each_use_mut(|v| *v = vn[v.index()]);
                    if let InstKind::Phi { args } = &mut data.kind {
                        for a in args.iter_mut() {
                            a.value = vn[a.value.index()];
                        }
                    }

                    let dst = data.dst;
                    let key = match &data.kind {
                        InstKind::Const { imm } => Some(Key::Const(*imm)),
                        InstKind::Copy { src } => {
                            // Forward the copy's name; the copy itself
                            // stays (it may be a coalescing-relevant move)
                            // unless its name is now unused — DCE decides.
                            let src = *src;
                            let d = dst.expect("copy defines");
                            vn[d.index()] = vn[src.index()];
                            stats.copies_forwarded += 1;
                            to_delete.push((b, inst));
                            continue;
                        }
                        InstKind::Unary { op, a } => Some(Key::Unary(*op, *a)),
                        InstKind::Binary { op, a, b: rhs } => {
                            let (x, y) = if commutative(*op) && rhs < a {
                                (*rhs, *a)
                            } else {
                                (*a, *rhs)
                            };
                            Some(Key::Binary(*op, x, y))
                        }
                        InstKind::Phi { args } => {
                            // Meaningless φ: all numbered args equal.
                            let first = args.first().map(|a| a.value);
                            if let Some(f) = first {
                                if args.iter().all(|a| a.value == f)
                                    && f != dst.expect("phi defines")
                                {
                                    let d = dst.expect("phi defines");
                                    vn[d.index()] = vn[f.index()];
                                    stats.phis_collapsed += 1;
                                    to_delete.push((b, inst));
                                    continue;
                                }
                            }
                            let mut pairs: Vec<(Block, Value)> =
                                args.iter().map(|a| (a.pred, a.value)).collect();
                            pairs.sort_by_key(|&(p, _)| p);
                            Some(Key::Phi(b, pairs))
                        }
                        // Loads, stores, params, terminators: not pure or
                        // not expressions.
                        _ => None,
                    };

                    let Some(key) = key else { continue };
                    let Some(d) = dst else { continue };
                    // Look the key up through the scope chain.
                    let found = scopes.iter().rev().find_map(|s| s.get(&key)).copied();
                    match found {
                        Some(existing) => {
                            vn[d.index()] = existing;
                            if matches!(key, Key::Phi(..)) {
                                stats.phis_collapsed += 1;
                            } else {
                                stats.redundant_removed += 1;
                            }
                            to_delete.push((b, inst));
                        }
                        None => {
                            scopes.last_mut().expect("open scope").insert(key, d);
                        }
                    }
                }
            }
        }
    }

    // Final rewrite: chase vn chains (a value may forward to a value that
    // itself forwarded later during the walk).
    let resolve = |mut v: Value, vn: &[Value]| -> Value {
        for _ in 0..n {
            let next = vn[v.index()];
            if next == v {
                break;
            }
            v = next;
        }
        v
    };
    let blocks: Vec<Block> = func.blocks().collect();
    for &b in &blocks {
        let insts: Vec<Inst> = func.block_insts(b).to_vec();
        for inst in insts {
            let data = func.inst_mut(inst);
            data.kind.for_each_use_mut(|v| *v = resolve(*v, &vn));
            if let InstKind::Phi { args } = &mut data.kind {
                for a in args.iter_mut() {
                    a.value = resolve(a.value, &vn);
                }
            }
        }
    }
    for (b, inst) in to_delete {
        func.remove_inst(b, inst);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;
    use fcc_ssa::verify_ssa;

    fn gvn(text: &str) -> (Function, GvnStats) {
        let mut f = parse_function(text).unwrap();
        verify_ssa(&f).expect("test input is SSA");
        let before = fcc_interp::run(&f, &[5]).ok();
        let stats = value_number(&mut f);
        verify_function(&f).unwrap();
        verify_ssa(&f).expect("still SSA");
        if let Some(b) = before {
            let after = fcc_interp::run(&f, &[5]).unwrap();
            assert_eq!(b.behavior(), after.behavior(), "{f}");
        }
        (f, stats)
    }

    #[test]
    fn removes_redundant_expression() {
        let (f, stats) = gvn("function @r(1) {
             b0:
                 v0 = param 0
                 v1 = add v0, v0
                 v2 = add v0, v0
                 v3 = mul v1, v2
                 return v3
             }");
        assert_eq!(stats.redundant_removed, 1);
        // v2 deleted; v3 = mul v1, v1.
        assert_eq!(f.live_inst_count(), 4);
    }

    #[test]
    fn commutative_operands_canonicalise() {
        let (_, stats) = gvn("function @c(2) {
             b0:
                 v0 = param 0
                 v1 = param 1
                 v2 = add v0, v1
                 v3 = add v1, v0
                 v4 = mul v2, v3
                 return v4
             }");
        assert_eq!(stats.redundant_removed, 1);
    }

    #[test]
    fn noncommutative_not_merged() {
        let (_, stats) = gvn("function @s(2) {
             b0:
                 v0 = param 0
                 v1 = param 1
                 v2 = sub v0, v1
                 v3 = sub v1, v0
                 v4 = mul v2, v3
                 return v4
             }");
        assert_eq!(stats.redundant_removed, 0);
    }

    #[test]
    fn dominated_blocks_reuse_dominating_values() {
        let (_, stats) = gvn("function @d(1) {
             b0:
                 v0 = param 0
                 v1 = mul v0, v0
                 branch v0, b1, b2
             b1:
                 v2 = mul v0, v0
                 v3 = add v2, v1
                 jump b3
             b2:
                 jump b3
             b3:
                 v4 = mul v0, v0
                 return v4
             }");
        // b1's and b3's recomputations both fold to b0's v1.
        assert_eq!(stats.redundant_removed, 2);
    }

    #[test]
    fn sibling_blocks_do_not_share() {
        // b1's computation must NOT be visible in b2 (no dominance).
        let (f, stats) = gvn("function @sib(1) {
             b0:
                 v0 = param 0
                 branch v0, b1, b2
             b1:
                 v1 = mul v0, v0
                 jump b3
             b2:
                 v2 = mul v0, v0
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }");
        assert_eq!(stats.redundant_removed, 0);
        assert_eq!(f.phi_count(), 1);
    }

    #[test]
    fn loads_never_numbered() {
        let (f, stats) = gvn("function @l(1) {
             b0:
                 v0 = param 0
                 v1 = load v0
                 store v0, v0
                 v2 = load v0
                 v3 = add v1, v2
                 return v3
             }");
        assert_eq!(stats.redundant_removed, 0);
        assert_eq!(f.live_inst_count(), 6);
    }

    #[test]
    fn duplicate_phis_merge() {
        let (f, stats) = gvn("function @dp(1) {
             b0:
                 v0 = param 0
                 v1 = const 1
                 v2 = const 2
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 v4 = phi [b1: v1], [b2: v2]
                 v5 = add v3, v4
                 return v5
             }");
        assert_eq!(stats.phis_collapsed, 1);
        assert_eq!(f.phi_count(), 1);
    }

    #[test]
    fn meaningless_phi_collapses() {
        let (f, stats) = gvn("function @mp(1) {
             b0:
                 v0 = param 0
                 v1 = const 7
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v2 = phi [b1: v1], [b2: v1]
                 v3 = add v2, v2
                 return v3
             }");
        assert_eq!(stats.phis_collapsed, 1);
        assert_eq!(f.phi_count(), 0);
    }

    #[test]
    fn constants_are_shared() {
        let (_, stats) = gvn("function @k(0) {
             b0:
                 v0 = const 42
                 v1 = const 42
                 v2 = add v0, v1
                 return v2
             }");
        assert_eq!(stats.redundant_removed, 1);
    }

    #[test]
    fn copy_chain_forwarded() {
        let (f, stats) = gvn("function @cc(1) {
             b0:
                 v0 = param 0
                 v1 = copy v0
                 v2 = copy v1
                 v3 = add v2, v2
                 return v3
             }");
        assert_eq!(stats.copies_forwarded, 2);
        assert_eq!(f.static_copy_count(), 0);
    }
}
