//! CFG simplification: merge straight-line chains and thread through
//! empty forwarding blocks.
//!
//! SSA destruction splits critical edges; many of the blocks it creates
//! end up holding nothing but a `jump` once coalescing removed their
//! copies. This pass cleans the shape back up, which is what a production
//! backend does between phases. It is careful to preserve the entry
//! invariant and φ keys:
//!
//! * an empty block (`jump t` only, no φs) is bypassed when `t` has no
//!   φs, or when the empty block has a unique predecessor with no other
//!   edge to `t` (the φ key is then rewritten);
//! * a block whose unique successor has it as unique predecessor is
//!   merged into it, provided the successor carries no φs.

use fcc_analysis::AnalysisManager;
use fcc_ir::{Block, Function, Inst, InstKind};

/// Simplify `func`'s control flow to a fixpoint. Returns blocks removed.
pub fn simplify_cfg(func: &mut Function) -> usize {
    simplify_cfg_with(func, &mut AnalysisManager::new())
}

/// [`simplify_cfg`], pulling the CFG from a shared [`AnalysisManager`]:
/// the first iteration reuses a cached CFG when the function is
/// unchanged; later iterations recompute because each rewrite bumps the
/// epoch.
pub fn simplify_cfg_with(func: &mut Function, am: &mut AnalysisManager) -> usize {
    let mut removed = 0;
    loop {
        let n = pass(func, am);
        if n == 0 {
            return removed;
        }
        removed += n;
    }
}

fn pass(func: &mut Function, am: &mut AnalysisManager) -> usize {
    let cfg = am.cfg(func);
    let entry = func.entry();
    let blocks: Vec<Block> = func.blocks().collect();

    // --- thread through empty forwarding blocks ---
    for &b in &blocks {
        if b == entry || !cfg.is_reachable(b) {
            continue;
        }
        let insts = func.block_insts(b);
        if insts.len() != 1 {
            continue;
        }
        let InstKind::Jump { dst: target } = func.inst(insts[0]).kind else {
            continue;
        };
        if target == b {
            continue; // self loop, nothing to thread
        }
        let target_has_phis = func.block_phis(target).next().is_some();
        let preds: Vec<Block> = cfg.preds(b).to_vec();
        if preds.is_empty() {
            continue;
        }
        let ok = if !target_has_phis {
            true
        } else {
            // Single pred, which must not already reach `target` (a second
            // edge would need a duplicate φ key).
            preds.len() == 1 && !cfg.succs(preds[0]).contains(&target) && preds[0] != target
        };
        if !ok {
            continue;
        }
        // Retarget every predecessor edge b' -> b to b' -> target.
        for &p in &preds {
            let term = func.terminator(p).expect("pred terminates");
            func.inst_mut(term).kind.for_each_successor_mut(|d| {
                if *d == b {
                    *d = target;
                }
            });
        }
        // Re-key φs in target from b to the unique pred (if any φs).
        if target_has_phis {
            let new_key = preds[0];
            let phis: Vec<Inst> = func.block_phis(target).collect();
            for phi in phis {
                if let InstKind::Phi { args } = &mut func.inst_mut(phi).kind {
                    for a in args.iter_mut() {
                        if a.pred == b {
                            a.pred = new_key;
                        }
                    }
                }
            }
        }
        func.remove_block_from_layout(b);
        return 1; // recompute the CFG before doing more
    }

    // --- merge unique-succ/unique-pred pairs ---
    for &b in &blocks {
        if !cfg.is_reachable(b) {
            continue;
        }
        let Some(term) = func.terminator(b) else {
            continue;
        };
        let InstKind::Jump { dst: c } = func.inst(term).kind else {
            continue;
        };
        if c == b || c == entry {
            continue;
        }
        if cfg.preds(c).len() != 1 {
            continue;
        }
        if func.block_phis(c).next().is_some() {
            continue; // single-pred φs should be collapsed by constfold first
        }
        // Move c's instructions into b, replacing b's jump.
        func.remove_inst(b, term);
        let c_insts: Vec<Inst> = func.block_insts(c).to_vec();
        for i in c_insts {
            func.remove_inst(c, i);
            func.relink_inst_at_end(b, i);
        }
        // φs in c's successors keyed by c must re-key to b.
        let succs = func.successors(b);
        for s in succs {
            let phis: Vec<Inst> = func.block_phis(s).collect();
            for phi in phis {
                if let InstKind::Phi { args } = &mut func.inst_mut(phi).kind {
                    for a in args.iter_mut() {
                        if a.pred == c {
                            a.pred = b;
                        }
                    }
                }
            }
        }
        func.remove_block_from_layout(c);
        return 1;
    }

    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;

    #[test]
    fn merges_linear_chain() {
        let mut f = parse_function(
            "function @m(0) {
             b0:
                 v0 = const 1
                 jump b1
             b1:
                 v1 = add v0, v0
                 jump b2
             b2:
                 return v1
             }",
        )
        .unwrap();
        let removed = simplify_cfg(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(f.blocks().count(), 1);
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[]).unwrap().ret, Some(2));
    }

    #[test]
    fn threads_empty_block_without_target_phis() {
        let mut f = parse_function(
            "function @t(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 return v0
             }",
        )
        .unwrap();
        let removed = simplify_cfg(&mut f);
        assert!(removed >= 2, "both forwarding blocks disappear");
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[]).unwrap().ret, Some(1));
    }

    #[test]
    fn preserves_phis_when_threading_single_pred() {
        let mut f = parse_function(
            "function @p(1) {
             b0:
                 v0 = param 0
                 v1 = const 10
                 v2 = const 20
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }",
        )
        .unwrap();
        simplify_cfg(&mut f);
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[1]).unwrap().ret, Some(10));
        assert_eq!(fcc_interp::run(&f, &[0]).unwrap().ret, Some(20));
    }

    #[test]
    fn does_not_create_duplicate_phi_keys() {
        // b1 and b2 both forward to b3 from the same pred b0: threading
        // both would give b0 two φ keys; at most one may thread.
        let mut f = parse_function(
            "function @d(1) {
             b0:
                 v0 = param 0
                 v1 = const 1
                 v2 = const 2
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }",
        )
        .unwrap();
        simplify_cfg(&mut f);
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[1]).unwrap().ret, Some(1));
        assert_eq!(fcc_interp::run(&f, &[0]).unwrap().ret, Some(2));
    }

    #[test]
    fn undoes_critical_edge_splitting_after_coalescing() {
        use fcc_ssa::{build_ssa, SsaFlavor};
        let mut f = parse_function(
            "function @loop(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 v2 = const 0
                 jump b1
             b1:
                 v3 = lt v2, v0
                 branch v3, b2, b3
             b2:
                 v1 = add v1, v2
                 v4 = const 1
                 v2 = add v2, v4
                 jump b1
             b3:
                 return v1
             }",
        )
        .unwrap();
        let reference = fcc_interp::run(&f, &[10]).unwrap();
        build_ssa(&mut f, SsaFlavor::Pruned, true);
        // Standard destruction splits edges and leaves copies.
        fcc_ssa::destruct_standard(&mut f);
        let before = f.blocks().count();
        simplify_cfg(&mut f);
        assert!(f.blocks().count() <= before);
        verify_function(&f).unwrap();
        let out = fcc_interp::run(&f, &[10]).unwrap();
        assert_eq!(reference.behavior(), out.behavior());
    }
}
