//! Controlled fault injection for testing the failure-handling stack.
//!
//! The fuzz harness (`fcc fuzz`) promises that when a pipeline
//! miscompiles, the differential oracle catches it and the shrinker
//! reduces it to a small repro. That promise is only testable against a
//! *real* miscompile, so this module can re-open a bug this codebase
//! actually had: skipping [`crate::constfold::restore_phis_first`] after
//! folding leaves non-φ instructions above sibling φs, which later
//! φ-scans (SSA destruction, verification) silently truncate.
//!
//! The switch is a process-global `AtomicBool` rather than only a cargo
//! feature so the default test suite — which runs without features — can
//! flip it on for a single test binary. Building with the
//! `inject-phi-ordering-bug` feature sets the initial value.

use std::sync::atomic::{AtomicBool, Ordering};

static PHI_RESTORE_DISABLED: AtomicBool =
    AtomicBool::new(cfg!(feature = "inject-phi-ordering-bug"));

/// Enable or disable the injected φ-ordering bug for this process.
///
/// When set, `constfold`/`range_fold` skip restoring the φs-first block
/// layout after rewriting φs, miscompiling some φ-heavy programs.
pub fn disable_phi_restore(disabled: bool) {
    PHI_RESTORE_DISABLED.store(disabled, Ordering::SeqCst);
}

/// Whether the φ-ordering restore is currently disabled.
pub fn phi_restore_disabled() -> bool {
    PHI_RESTORE_DISABLED.load(Ordering::SeqCst)
}
