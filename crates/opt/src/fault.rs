//! Controlled fault injection for testing the failure-handling stack.
//!
//! This is the public face of the injection matrix that exercises the
//! driver's degradation ladder, one injection per failure class:
//!
//! * **panic in a named pass** ([`inject_panic_in`]) — fired by the
//!   pass manager and the driver's phase timers at entry to the pass;
//! * **infinite loop in the solver** ([`inject_solver_spin`]) — the
//!   `fcc-dataflow` worklist solver busy-loops until the fuel budget
//!   stops it;
//! * **verifier violation after a named pass**
//!   ([`inject_verifier_violation_after`]) — [`maybe_corrupt`] plants a
//!   use of a never-defined value right after the pass runs, which the
//!   lint suite / SSA verifier must then report against that pass.
//!
//! The registry itself lives in [`fcc_analysis::fault`] (the solver
//! cannot see this crate) and is re-exported here; only the
//! `Function`-mutating corruption is implemented locally. All switches
//! are process-global — tests that arm them serialise on a lock.
//!
//! Historically this module also carries the φ-ordering bug switch: the
//! fuzz harness promises that when a pipeline miscompiles, the
//! differential oracle catches it and the shrinker reduces it to a
//! small repro. That promise is only testable against a *real*
//! miscompile, so [`disable_phi_restore`] can re-open a bug this
//! codebase actually had: skipping
//! [`crate::constfold::restore_phis_first`] after folding leaves non-φ
//! instructions above sibling φs, which later φ-scans (SSA destruction,
//! verification) silently truncate.
//!
//! The switches are process-global `AtomicBool`s rather than only cargo
//! features so the default test suite — which runs without features —
//! can flip them on for a single test binary. Building with the
//! `inject-phi-ordering-bug` feature sets the φ switch's initial value.

use fcc_ir::{Function, InstKind};
use std::sync::atomic::{AtomicBool, Ordering};

pub use fcc_analysis::fault::{
    any_armed, clear_injections, inject_panic_in, inject_solver_spin,
    inject_verifier_violation_after, maybe_panic, solver_spin, violation_target,
};

/// Hook: if a verifier-violation injection targets `pass`, corrupt
/// `func` so that any subsequent verification must fail. Returns whether
/// a corruption was applied (the pass manager then treats the pass as
/// having changed the function, so `--verify-each` lints immediately and
/// attributes the breakage to `pass`).
///
/// The corruption is a use of a value that is never defined — invalid at
/// every pipeline stage, and planted in a terminator operand (a return
/// value or branch condition) so dead-code elimination cannot quietly
/// delete it before a verifier looks.
pub fn maybe_corrupt(pass: &str, func: &mut Function) -> bool {
    if !violation_target(pass) {
        return false;
    }
    let undef = func.new_value();
    let blocks: Vec<_> = func.blocks().collect();
    for &b in blocks.iter().rev() {
        let Some(term) = func.terminator(b) else {
            continue;
        };
        let mut has_use = false;
        func.inst(term).kind.for_each_use(|_| has_use = true);
        if has_use {
            let mut first = true;
            func.inst_mut(term).kind.for_each_use_mut(|v| {
                if std::mem::take(&mut first) {
                    *v = undef;
                }
            });
            return true;
        }
    }
    // Degenerate function whose terminators use no values: plant a copy
    // from the undefined value instead (visible to the SSA verifier and
    // the definite-init lint, though DCE could remove it).
    let dst = func.new_value();
    let entry = func.entry();
    func.insert_before_terminator(entry, InstKind::Copy { src: undef }, Some(dst));
    true
}

static PHI_RESTORE_DISABLED: AtomicBool =
    AtomicBool::new(cfg!(feature = "inject-phi-ordering-bug"));

/// Enable or disable the injected φ-ordering bug for this process.
///
/// When set, `constfold`/`range_fold` skip restoring the φs-first block
/// layout after rewriting φs, miscompiling some φ-heavy programs.
pub fn disable_phi_restore(disabled: bool) {
    PHI_RESTORE_DISABLED.store(disabled, Ordering::SeqCst);
}

/// Whether the φ-ordering restore is currently disabled.
pub fn phi_restore_disabled() -> bool {
    PHI_RESTORE_DISABLED.load(Ordering::SeqCst)
}
