//! Sparse constant folding and branch simplification (SSA only).
//!
//! Propagates compile-time constants along SSA def-use chains, folds
//! arithmetic on constants, rewrites constant branches into jumps, prunes
//! φ arguments on deleted edges, collapses single-argument φs into
//! copies, and removes the code made unreachable — a simplified
//! Wegman–Zadeck-style pass providing realistic optimizer context for the
//! coalescing pipeline (constant branches are one way real compilers
//! produce the irregular CFGs the algorithm must handle).

use std::collections::HashMap;

use fcc_analysis::AnalysisManager;
use fcc_ir::{Block, Function, Inst, InstKind, Value};

/// Statistics from one folding run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FoldStats {
    /// Instructions replaced by `const`.
    pub folded: usize,
    /// Conditional branches rewritten into jumps.
    pub branches_resolved: usize,
    /// Single-argument φs collapsed into copies.
    pub phis_collapsed: usize,
    /// Unreachable blocks removed afterwards.
    pub blocks_removed: usize,
}

/// Fold constants in the SSA function `func` to a fixpoint.
///
/// # Panics
/// Panics (in debug builds, via the verifier downstream) if `func` is not
/// in SSA form — the def-use reasoning requires single definitions.
pub fn const_fold(func: &mut Function) -> FoldStats {
    const_fold_with(func, &mut AnalysisManager::new())
}

/// [`const_fold`], pulling the CFG (needed after branch resolution) from
/// a shared [`AnalysisManager`] instead of recomputing it ad hoc.
pub fn const_fold_with(func: &mut Function, am: &mut AnalysisManager) -> FoldStats {
    let mut stats = FoldStats::default();
    loop {
        let changed = fold_once(func, am, &mut stats);
        if !changed {
            break;
        }
    }
    stats
}

fn fold_once(func: &mut Function, am: &mut AnalysisManager, stats: &mut FoldStats) -> bool {
    // Map each SSA value to its constant, if its defining instruction is
    // (or folds to) a constant.
    let mut consts: HashMap<Value, i64> = HashMap::new();
    let mut changed = false;

    // Iterate in layout order until stable within this round; dominance
    // guarantees defs precede uses except through φs, which we re-visit
    // on the next round.
    for b in func.blocks().collect::<Vec<_>>() {
        let insts: Vec<Inst> = func.block_insts(b).to_vec();
        for inst in insts {
            let data = func.inst(inst);
            let dst = data.dst;
            let new_const = match &data.kind {
                InstKind::Const { imm } => Some(*imm),
                InstKind::Copy { src } => consts.get(src).copied(),
                InstKind::Unary { op, a } => consts.get(a).map(|&x| op.eval(x)),
                InstKind::Binary { op, a, b } => match (consts.get(a), consts.get(b)) {
                    (Some(&x), Some(&y)) => Some(op.eval(x, y)),
                    _ => None,
                },
                InstKind::Phi { args } => {
                    // A φ whose arguments are all the same constant.
                    let vals: Option<Vec<i64>> =
                        args.iter().map(|a| consts.get(&a.value).copied()).collect();
                    vals.and_then(|v| {
                        if !v.is_empty() && v.iter().all(|&x| x == v[0]) {
                            Some(v[0])
                        } else {
                            None
                        }
                    })
                }
                _ => None,
            };
            if let (Some(c), Some(d)) = (new_const, dst) {
                consts.insert(d, c);
                if !matches!(func.inst(inst).kind, InstKind::Const { .. }) {
                    func.inst_mut(inst).kind = InstKind::Const { imm: c };
                    stats.folded += 1;
                    changed = true;
                }
            }
        }
    }

    // A folded φ leaves a const at the block head, and the φ pruning
    // and collapsing below scan φs from the top — restore the φs-first
    // invariant before they run, not just at the end.
    if changed {
        restore_phis_first(func);
    }

    // Resolve constant branches.
    let blocks: Vec<Block> = func.blocks().collect();
    let mut resolved_any = false;
    for &b in &blocks {
        let Some(term) = func.terminator(b) else {
            continue;
        };
        if let InstKind::Branch {
            cond,
            then_dst,
            else_dst,
        } = func.inst(term).kind
        {
            if let Some(&c) = consts.get(&cond) {
                let dst = if c != 0 { then_dst } else { else_dst };
                func.inst_mut(term).kind = InstKind::Jump { dst };
                stats.branches_resolved += 1;
                resolved_any = true;
                changed = true;
            }
        }
    }

    if resolved_any {
        // Dropped edges invalidate φ keys: retain only arguments whose
        // predecessor still has an edge here, then prune dead blocks.
        stats.blocks_removed += func.remove_unreachable_blocks();
        let cfg = am.cfg(func);
        for b in func.blocks().collect::<Vec<_>>() {
            let phis: Vec<Inst> = func.block_phis(b).collect();
            for phi in phis {
                let preds: Vec<Block> = cfg.preds(b).to_vec();
                if let InstKind::Phi { args } = &mut func.inst_mut(phi).kind {
                    args.retain(|a| preds.contains(&a.pred));
                }
            }
        }
    }

    // Collapse single-argument φs into copies (single-pred blocks after
    // branch resolution).
    for &b in &blocks {
        if !func.blocks().any(|x| x == b) {
            continue; // removed above
        }
        let phis: Vec<Inst> = func.block_phis(b).collect();
        for phi in phis {
            let data = func.inst(phi);
            if let InstKind::Phi { args } = &data.kind {
                if args.len() == 1 {
                    let src = args[0].value;
                    func.inst_mut(phi).kind = InstKind::Copy { src };
                    stats.phis_collapsed += 1;
                    changed = true;
                }
            }
        }
    }

    // Collapsed φs became copies at the block head; restore the
    // φs-first invariant once more (safe: the folded instruction cannot
    // feed a φ argument of its own block, those are edge values).
    if changed {
        restore_phis_first(func);
    }

    changed
}

/// Re-link any block whose φs no longer lead it (a φ rewritten in place
/// to `const`/`copy` leaves a non-φ above its sibling φs).
pub(crate) fn restore_phis_first(func: &mut Function) {
    if crate::fault::phi_restore_disabled() {
        return;
    }
    for b in func.blocks().collect::<Vec<_>>() {
        let insts: Vec<Inst> = func.block_insts(b).to_vec();
        let first_nonphi = insts.iter().position(|&i| !func.inst(i).kind.is_phi());
        let needs_fix = match first_nonphi {
            Some(p) => insts[p..].iter().any(|&i| func.inst(i).kind.is_phi()),
            None => false,
        };
        if needs_fix {
            let (phis, rest): (Vec<Inst>, Vec<Inst>) =
                insts.into_iter().partition(|&i| func.inst(i).kind.is_phi());
            func.retain_insts(b, |_, _| false);
            for i in phis.into_iter().chain(rest) {
                func.relink_inst_at_end(b, i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;

    #[test]
    fn folds_arithmetic_chains() {
        let mut f = parse_function(
            "function @a(0) {
             b0:
                 v0 = const 6
                 v1 = const 7
                 v2 = mul v0, v1
                 v3 = add v2, v2
                 return v3
             }",
        )
        .unwrap();
        let stats = const_fold(&mut f);
        assert_eq!(stats.folded, 2);
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[]).unwrap().ret, Some(84));
    }

    #[test]
    fn resolves_constant_branch_and_prunes() {
        let mut f = parse_function(
            "function @br(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 v1 = const 10
                 jump b3
             b2:
                 v2 = const 20
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 return v3
             }",
        )
        .unwrap();
        let stats = const_fold(&mut f);
        assert!(stats.branches_resolved >= 1);
        assert!(stats.blocks_removed >= 1);
        assert!(stats.phis_collapsed >= 1 || !f.has_phis());
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[]).unwrap().ret, Some(10));
    }

    #[test]
    fn phi_of_equal_constants_folds() {
        let mut f = parse_function(
            "function @pc(1) {
             b0:
                 v0 = param 0
                 v1 = const 4
                 v2 = const 4
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 v4 = add v3, v3
                 return v4
             }",
        )
        .unwrap();
        const_fold(&mut f);
        assert_eq!(fcc_interp::run(&f, &[0]).unwrap().ret, Some(8));
        assert_eq!(fcc_interp::run(&f, &[1]).unwrap().ret, Some(8));
        // The φ and the add both became constants.
        verify_function(&f).unwrap();
    }

    #[test]
    fn nonconstant_untouched() {
        let src = "function @n(1) {
             b0:
                 v0 = param 0
                 v1 = const 2
                 v2 = mul v0, v1
                 return v2
             }";
        let mut f = parse_function(src).unwrap();
        let stats = const_fold(&mut f);
        assert_eq!(stats.folded, 0);
        assert_eq!(fcc_interp::run(&f, &[21]).unwrap().ret, Some(42));
    }

    #[test]
    fn loop_carried_phi_not_folded_from_one_side() {
        let mut f = parse_function(
            "function @l(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 jump b1
             b1:
                 v2 = phi [b0: v1], [b1: v3]
                 v4 = const 1
                 v3 = add v2, v4
                 v5 = lt v3, v0
                 branch v5, b1, b2
             b2:
                 return v3
             }",
        )
        .unwrap();
        const_fold(&mut f);
        verify_function(&f).unwrap();
        // The loop must still run: 5 iterations for n=5.
        assert_eq!(fcc_interp::run(&f, &[5]).unwrap().ret, Some(5));
    }
}
