//! Memory-aware transforms gated on `fcc-alias` verdicts.
//!
//! Three classical memory optimisations, each justified purely by
//! [`AliasVerdict`]s and the block-entry facts of the memory-state
//! lattice — never by syntactic address equality:
//!
//! * [`store_forward`] — a load whose address must-alias a still-valid
//!   earlier store reads a value the program already holds in a
//!   register; replace the load with a `copy` of the stored value.
//!   Works in-block through a walking store window and across blocks
//!   through [`fcc_alias::solve_memory`] entry facts.
//! * [`redundant_load_elim`] — a load that must-alias an earlier load
//!   with no possibly-clobbering store in between repeats a read;
//!   replace it with a `copy` of the first load's result.
//! * [`dead_store_elim`] — a store whose **next memory operation** in
//!   its block is a must-alias store is overwritten before any possible
//!   observation; delete it.
//!
//! ## Trap preservation
//!
//! The interpreter's normative rule (`fcc-interp` module docs) makes
//! every out-of-range access trap, so memory instructions cannot be
//! treated as pure. Each transform preserves the trap behaviour
//! exactly:
//!
//! * forwarding and load elimination replace a load with a copy only
//!   when a must-alias access already executed on every path to it —
//!   that access would have trapped first at the same address, so the
//!   replaced load was provably in bounds;
//! * dead-store elimination requires the very next memory operation to
//!   be the killing must-alias store, with only trap-free scalar
//!   instructions in between (`param` is also treated as a barrier —
//!   it traps on missing arguments). A store that would have trapped is
//!   replaced by an identical trap, [`ExecError::OutOfBounds`] with the
//!   same address and bound, at the killing store.
//!
//! Like every deleting pass (DCE included), removing instructions can
//! turn an `OutOfFuel` trap into a completed run; fuel is a resource
//! bound, not an observable, by the differential harness's policy.
//!
//! [`ExecError::OutOfBounds`]: ../fcc_interp/enum.ExecError.html

use std::collections::BTreeMap;

use fcc_alias::{alias_verdict, alias_verdict_const, solve_memory, AliasVerdict};
use fcc_analysis::AnalysisManager;
use fcc_dataflow::FunctionAnalysis;
use fcc_ir::{Function, Inst, InstKind, Value};

/// [`store_forward_with`] against a throwaway analysis cache.
pub fn store_forward(func: &mut Function) -> usize {
    store_forward_with(func, &mut AnalysisManager::new())
}

/// Replace loads that must-alias a dominating still-valid store with a
/// `copy` of the stored value. Returns the number of loads forwarded.
///
/// In-block, a store window tracks `(addr, value)` pairs killed by any
/// later store not provably disjoint; across blocks, an entry fact
/// `k → v` of the memory-state lattice means every executable path last
/// stored `v` to word `k`, which both proves `mem[k] = v` and (by
/// strictness — each path runs a store that uses `v`) that `v`'s
/// definition dominates the block.
pub fn store_forward_with(func: &mut Function, am: &mut AnalysisManager) -> usize {
    store_forward_filtered(func, am, false)
}

/// [`store_forward_with`], refusing to forward any value that appears
/// as a φ definition or argument.
///
/// Forwarding `v` extends `v`'s live range to the replaced load. When
/// `v` belongs to a φ web (code headed into `destruct_via_webs`), the
/// stretched range can newly cross the definition of another member of
/// the *same* web — for instance the web's φ at a loop header, when a
/// value stored before the loop is forwarded to a load inside it — and
/// web unioning would then merge interfering names, the exact
/// miscompile the `class-interference` audit flags. Load results are
/// never φ operands in unfolded SSA, so [`redundant_load_elim_with`]
/// needs no such gate, and deleting stores only shrinks live ranges, so
/// neither does [`dead_store_elim_with`].
pub fn store_forward_web_safe_with(func: &mut Function, am: &mut AnalysisManager) -> usize {
    store_forward_filtered(func, am, true)
}

fn store_forward_filtered(func: &mut Function, am: &mut AnalysisManager, web_safe: bool) -> usize {
    let phi_involved: std::collections::HashSet<Value> = if web_safe {
        let mut set = std::collections::HashSet::new();
        for b in func.blocks() {
            for p in func.block_phis(b) {
                let data = func.inst(p);
                set.extend(data.dst);
                if let InstKind::Phi { args } = &data.kind {
                    set.extend(args.iter().map(|a| a.value));
                }
            }
        }
        set
    } else {
        Default::default()
    };
    let forwardable = |v: Value| !web_safe || !phi_involved.contains(&v);
    let fa = FunctionAnalysis::compute(func, am);
    let mem = solve_memory(func, &fa);
    let mut rewrites: Vec<(Inst, Value)> = Vec::new();
    for b in func.blocks() {
        if !fa.block_live(b) {
            continue;
        }
        // Facts on constant words, seeded from the cross-block lattice.
        let mut known: BTreeMap<i64, Value> = mem.entry(b).facts().clone();
        // Stores seen in this block, latest last.
        let mut window: Vec<(Value, Value)> = Vec::new();
        for &i in func.block_insts(b) {
            match &func.inst(i).kind {
                InstKind::Store { addr, val } => {
                    match fa.constant_of(*addr) {
                        Some(k) => {
                            known.insert(k, *val);
                        }
                        None => known.retain(|&k, _| {
                            alias_verdict_const(&fa, *addr, k) == AliasVerdict::Disjoint
                        }),
                    }
                    window.retain(|&(a, _)| alias_verdict(&fa, a, *addr) == AliasVerdict::Disjoint);
                    window.push((*addr, *val));
                }
                InstKind::Load { addr } => {
                    let hit = window
                        .iter()
                        .rev()
                        .find(|&&(a, _)| alias_verdict(&fa, a, *addr) == AliasVerdict::Must)
                        .map(|&(_, v)| v)
                        .or_else(|| fa.constant_of(*addr).and_then(|k| known.get(&k).copied()));
                    if let Some(v) = hit {
                        if forwardable(v) {
                            rewrites.push((i, v));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let n = rewrites.len();
    for (i, v) in rewrites {
        func.inst_mut(i).kind = InstKind::Copy { src: v };
    }
    n
}

/// [`redundant_load_elim_with`] against a throwaway analysis cache.
pub fn redundant_load_elim(func: &mut Function) -> usize {
    redundant_load_elim_with(func, &mut AnalysisManager::new())
}

/// Replace a load that must-alias an earlier load in the same block —
/// with no intervening store that may clobber the word — by a `copy` of
/// the first load's result. Returns the number of loads eliminated.
pub fn redundant_load_elim_with(func: &mut Function, am: &mut AnalysisManager) -> usize {
    let fa = FunctionAnalysis::compute(func, am);
    let mut rewrites: Vec<(Inst, Value)> = Vec::new();
    for b in func.blocks() {
        if !fa.block_live(b) {
            continue;
        }
        // Loads still known fresh: (addr, the value that holds mem[addr]).
        let mut fresh: Vec<(Value, Value)> = Vec::new();
        for &i in func.block_insts(b) {
            match &func.inst(i).kind {
                InstKind::Load { addr } => {
                    let dst = func.inst(i).dst.expect("loads define a value");
                    if let Some(&(_, first)) = fresh
                        .iter()
                        .find(|&&(a, _)| alias_verdict(&fa, a, *addr) == AliasVerdict::Must)
                    {
                        rewrites.push((i, first));
                        // dst == first from here on; keep the original
                        // entry, which already covers the address.
                    } else {
                        fresh.push((*addr, dst));
                    }
                }
                InstKind::Store { addr, val } => {
                    fresh.retain(|&(a, _)| alias_verdict(&fa, a, *addr) == AliasVerdict::Disjoint);
                    // The store itself publishes a fresh fact: a later
                    // load of a must-alias address is handled by
                    // store-forwarding, so no entry is needed here.
                    let _ = val;
                }
                _ => {}
            }
        }
    }
    let n = rewrites.len();
    for (i, v) in rewrites {
        func.inst_mut(i).kind = InstKind::Copy { src: v };
    }
    n
}

/// [`dead_store_elim_with`] against a throwaway analysis cache.
pub fn dead_store_elim(func: &mut Function) -> usize {
    dead_store_elim_with(func, &mut AnalysisManager::new())
}

/// Delete stores whose next memory operation in the block is a
/// must-alias store, with only trap-free instructions in between.
/// Returns the number of stores deleted.
///
/// The killing store writes the same runtime address, so the deleted
/// store's value is never observable — and if the deleted store would
/// have trapped, the killing store traps with the identical
/// `OutOfBounds` payload instead (`param` barriers keep any other trap
/// from firing first).
pub fn dead_store_elim_with(func: &mut Function, am: &mut AnalysisManager) -> usize {
    let fa = FunctionAnalysis::compute(func, am);
    let mut removals = Vec::new();
    for b in func.blocks() {
        if !fa.block_live(b) {
            continue;
        }
        let insts = func.block_insts(b).to_vec();
        for (pos, &i) in insts.iter().enumerate() {
            let InstKind::Store { addr, .. } = func.inst(i).kind else {
                continue;
            };
            for &j in &insts[pos + 1..] {
                match &func.inst(j).kind {
                    InstKind::Store { addr: a2, .. } => {
                        if alias_verdict(&fa, addr, *a2) == AliasVerdict::Must {
                            removals.push((b, i));
                        }
                        break;
                    }
                    // Barriers: anything that can observe memory or trap.
                    InstKind::Load { .. } | InstKind::Param { .. } => break,
                    _ => {}
                }
            }
        }
    }
    let n = removals.len();
    for (b, i) in removals {
        func.remove_inst(b, i);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;

    fn parsed(src: &str) -> Function {
        parse_function(src).unwrap()
    }

    #[test]
    fn forwards_same_block_constant_and_ssa_addresses() {
        let mut f = parsed(
            "function @f(2) {
             b0:
                 v0 = param 0
                 v1 = param 1
                 v2 = const 5
                 store v2, v0
                 v3 = load v2
                 v4 = const 63
                 v5 = and v1, v4
                 store v5, v1
                 v6 = load v5
                 v7 = add v3, v6
                 return v7
             }",
        );
        assert_eq!(store_forward(&mut f), 2, "{f}");
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[7, 9]).unwrap().ret, Some(16), "{f}");
    }

    #[test]
    fn forwards_across_blocks_when_every_path_agrees() {
        let mut f = parsed(
            "function @g(2) {
             b0:
                 v0 = param 0
                 v1 = param 1
                 v2 = const 3
                 store v2, v1
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v3 = load v2
                 return v3
             }",
        );
        assert_eq!(store_forward(&mut f), 1, "{f}");
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[1, 42]).unwrap().ret, Some(42));
        assert_eq!(fcc_interp::run(&f, &[0, 42]).unwrap().ret, Some(42));
    }

    #[test]
    fn may_alias_store_blocks_forwarding() {
        let mut f = parsed(
            "function @h(2) {
             b0:
                 v0 = param 0
                 v1 = param 1
                 v2 = const 5
                 store v2, v0
                 store v1, v0
                 v3 = load v2
                 return v3
             }",
        );
        assert_eq!(store_forward(&mut f), 0, "{f}");
    }

    #[test]
    fn disjoint_store_does_not_block_forwarding() {
        let mut f = parsed(
            "function @k(1) {
             b0:
                 v0 = param 0
                 v1 = const 5
                 v2 = const 9
                 store v1, v0
                 store v2, v0
                 v3 = load v1
                 return v3
             }",
        );
        assert_eq!(store_forward(&mut f), 1, "{f}");
        assert_eq!(fcc_interp::run(&f, &[11]).unwrap().ret, Some(11));
    }

    #[test]
    fn eliminates_repeated_loads_not_clobbered_ones() {
        let mut f = parsed(
            "function @r(1) {
             b0:
                 v0 = param 0
                 v1 = const 5
                 v2 = load v1
                 v3 = load v1
                 store v0, v0
                 v4 = load v1
                 v5 = add v2, v3
                 v6 = add v5, v4
                 return v6
             }",
        );
        assert_eq!(redundant_load_elim(&mut f), 1, "v3 only: {f}");
        verify_function(&f).unwrap();
        // v0 = 5 makes the may-alias store actually hit word 5.
        assert_eq!(fcc_interp::run(&f, &[5]).unwrap().ret, Some(5));
    }

    #[test]
    fn deletes_store_killed_by_next_memory_op() {
        let mut f = parsed(
            "function @d(1) {
             b0:
                 v0 = param 0
                 v1 = const 5
                 v2 = const 7
                 store v1, v0
                 v3 = add v0, v0
                 store v1, v3
                 v4 = load v1
                 return v4
             }",
        );
        assert_eq!(dead_store_elim(&mut f), 1, "{f}");
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[3]).unwrap().ret, Some(6));
    }

    #[test]
    fn web_safe_variant_skips_phi_involved_values() {
        let src = "function @ws(1) {
             b0:
                 v0 = param 0
                 branch v0, b1, b2
             b1:
                 v1 = const 1
                 jump b3
             b2:
                 v2 = const 2
                 jump b3
             b3:
                 v3 = phi [b1: v1], [b2: v2]
                 v4 = const 7
                 store v4, v3
                 v5 = load v4
                 return v5
             }";
        // The stored value is a φ definition: forwarding it would
        // stretch a web member's live range, so the web-safe variant
        // refuses while the default forwards.
        let mut f = parsed(src);
        let mut am = fcc_analysis::AnalysisManager::new();
        assert_eq!(store_forward_web_safe_with(&mut f, &mut am), 0, "{f}");
        let mut f = parsed(src);
        assert_eq!(store_forward(&mut f), 1, "{f}");
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[0]).unwrap().ret, Some(2));
    }

    #[test]
    fn intervening_load_keeps_the_store() {
        let mut f = parsed(
            "function @alive(1) {
             b0:
                 v0 = param 0
                 v1 = const 5
                 store v1, v0
                 v2 = load v0
                 store v1, v2
                 v3 = load v1
                 return v3
             }",
        );
        assert_eq!(dead_store_elim(&mut f), 0, "{f}");
    }

    #[test]
    fn oob_dead_store_traps_identically_after_deletion() {
        // Both stores hit the provably-negative word -4: deleting the
        // first preserves the exact OutOfBounds payload.
        let src = "function @t(1) {
             b0:
                 v0 = param 0
                 v1 = const -4
                 store v1, v0
                 v2 = add v0, v0
                 store v1, v2
                 return v0
             }";
        let mut f = parsed(src);
        let before = fcc_interp::run(&f, &[1]).unwrap_err();
        assert_eq!(dead_store_elim(&mut f), 1, "{f}");
        let after = fcc_interp::run(&f, &[1]).unwrap_err();
        assert_eq!(before, after);
    }
}
