//! Dead-code elimination.
//!
//! Deletes instructions whose results are never used and which have no
//! side effects (stores and terminators are roots). The paper relies on
//! exactly this pass to clean up after strictness is imposed by
//! initialising variables at the entry: "The initializations that are
//! unnecessary can then be removed by a dead-code elimination pass"
//! (Section 2).
//!
//! The pass is sound on SSA and non-SSA code alike: liveness of a *value*
//! keeps all of its definitions, which is conservative for multi-def
//! values but never wrong.

use fcc_ir::{Function, Inst, InstKind};

/// Remove dead instructions from `func`. Returns how many were deleted.
pub fn dead_code_elim(func: &mut Function) -> usize {
    let mut removed_total = 0;
    // Iterate to a fixpoint: removing one instruction can kill the uses
    // that kept another alive. Value universes are small enough that the
    // simple recount converges in a handful of rounds.
    loop {
        let n = func.num_values();
        let mut used = vec![false; n];
        for b in func.blocks() {
            for &inst in func.block_insts(b) {
                let data = func.inst(inst);
                data.kind.for_each_use(|v| used[v.index()] = true);
                if let InstKind::Phi { args } = &data.kind {
                    for a in args {
                        used[a.value.index()] = true;
                    }
                }
            }
        }
        let mut removed = 0;
        let blocks: Vec<_> = func.blocks().collect();
        for b in blocks {
            let dead: Vec<Inst> = func
                .block_insts(b)
                .iter()
                .copied()
                .filter(|&i| {
                    let data = func.inst(i);
                    let pure = !matches!(
                        data.kind,
                        InstKind::Store { .. }
                            | InstKind::Branch { .. }
                            | InstKind::Jump { .. }
                            | InstKind::Return { .. }
                    );
                    pure && data.dst.is_some_and(|d| !used[d.index()])
                })
                .collect();
            for i in dead {
                func.remove_inst(b, i);
                removed += 1;
            }
        }
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;

    #[test]
    fn removes_unused_pure_instructions() {
        let mut f = parse_function(
            "function @d(0) {
             b0:
                 v0 = const 1
                 v1 = const 2
                 v2 = add v0, v0
                 return v0
             }",
        )
        .unwrap();
        assert_eq!(dead_code_elim(&mut f), 2);
        verify_function(&f).unwrap();
        assert_eq!(f.live_inst_count(), 2);
    }

    #[test]
    fn chains_die_transitively() {
        let mut f = parse_function(
            "function @c(0) {
             b0:
                 v0 = const 1
                 v1 = add v0, v0
                 v2 = add v1, v1
                 v3 = add v2, v2
                 return v0
             }",
        )
        .unwrap();
        assert_eq!(dead_code_elim(&mut f), 3);
    }

    #[test]
    fn keeps_stores_and_live_code() {
        let mut f = parse_function(
            "function @s(0) {
             b0:
                 v0 = const 1
                 v1 = const 5
                 store v1, v0
                 return
             }",
        )
        .unwrap();
        assert_eq!(dead_code_elim(&mut f), 0);
    }

    #[test]
    fn dead_phi_removed() {
        let mut f = parse_function(
            "function @p(0) {
             b0:
                 v0 = const 1
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v1 = phi [b1: v0], [b2: v0]
                 return v0
             }",
        )
        .unwrap();
        assert_eq!(dead_code_elim(&mut f), 1);
        assert!(!f.has_phis());
    }

    #[test]
    fn phi_arg_uses_keep_values_alive() {
        let mut f = parse_function(
            "function @pa(0) {
             b0:
                 v0 = const 1
                 v1 = const 2
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v2 = phi [b1: v0], [b2: v1]
                 return v2
             }",
        )
        .unwrap();
        assert_eq!(dead_code_elim(&mut f), 0);
    }

    #[test]
    fn conservative_on_multidef_values() {
        // Non-SSA: v0 defined twice; the use keeps both defs.
        let mut f = parse_function(
            "function @m(0) {
             b0:
                 v0 = const 1
                 v0 = const 2
                 return v0
             }",
        )
        .unwrap();
        assert_eq!(dead_code_elim(&mut f), 0);
    }
}
