//! Copy propagation (SSA only).
//!
//! Replaces every use of a copy's destination with the copy's source and
//! deletes the copy. This is the standalone-pass version of what the SSA
//! construction does on the fly with `fold_copies = true` — the paper's
//! introduction observes that copies "can be folded during the
//! construction of the SSA form"; this pass folds them *after*
//! construction instead, chasing through copy chains.

use fcc_ir::{Function, Inst, InstKind, Value};

/// Propagate and delete SSA copies. Returns how many copies died.
pub fn copy_propagate(func: &mut Function) -> usize {
    let n = func.num_values();
    // Resolve each value to the root of its copy chain.
    let mut source: Vec<Option<Value>> = vec![None; n];
    let mut copies: Vec<(fcc_ir::Block, Inst)> = Vec::new();
    for b in func.blocks() {
        for &inst in func.block_insts(b) {
            if let InstKind::Copy { src } = func.inst(inst).kind {
                let dst = func.inst(inst).dst.expect("copy defines");
                source[dst.index()] = Some(src);
                copies.push((b, inst));
            }
        }
    }
    if copies.is_empty() {
        return 0;
    }
    let resolve = |mut v: Value, source: &[Option<Value>]| -> Value {
        // Chains are acyclic in SSA (a copy's source is defined earlier),
        // but guard against pathological input anyway.
        for _ in 0..n {
            match source[v.index()] {
                Some(s) if s != v => v = s,
                _ => break,
            }
        }
        v
    };

    let blocks: Vec<fcc_ir::Block> = func.blocks().collect();
    for &b in &blocks {
        let insts: Vec<Inst> = func.block_insts(b).to_vec();
        for inst in insts {
            let data = func.inst_mut(inst);
            data.kind.for_each_use_mut(|v| *v = resolve(*v, &source));
            if let InstKind::Phi { args } = &mut data.kind {
                for a in args.iter_mut() {
                    a.value = resolve(a.value, &source);
                }
            }
        }
    }
    let removed = copies.len();
    for (b, inst) in copies {
        func.remove_inst(b, inst);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;
    use fcc_ssa::verify_ssa;

    #[test]
    fn chases_copy_chains() {
        let mut f = parse_function(
            "function @c(1) {
             b0:
                 v0 = param 0
                 v1 = copy v0
                 v2 = copy v1
                 v3 = add v2, v1
                 return v3
             }",
        )
        .unwrap();
        verify_ssa(&f).unwrap();
        assert_eq!(copy_propagate(&mut f), 2);
        assert_eq!(f.static_copy_count(), 0);
        verify_function(&f).unwrap();
        verify_ssa(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[21]).unwrap().ret, Some(42));
    }

    #[test]
    fn propagates_into_phi_args() {
        let mut f = parse_function(
            "function @p(1) {
             b0:
                 v0 = param 0
                 v1 = const 3
                 v2 = copy v1
                 branch v0, b1, b2
             b1:
                 jump b3
             b2:
                 jump b3
             b3:
                 v3 = phi [b1: v2], [b2: v0]
                 return v3
             }",
        )
        .unwrap();
        copy_propagate(&mut f);
        assert_eq!(f.static_copy_count(), 0);
        verify_ssa(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[1]).unwrap().ret, Some(3));
        assert_eq!(fcc_interp::run(&f, &[0]).unwrap().ret, Some(0));
    }

    #[test]
    fn no_copies_is_a_noop() {
        let src = "function @n(1) {\nb0:\n v0 = param 0\n return v0\n}";
        let mut f = parse_function(src).unwrap();
        assert_eq!(copy_propagate(&mut f), 0);
        assert_eq!(f.to_string(), parse_function(src).unwrap().to_string());
    }
}
