//! Analysis-guided folding: SCCP + value ranges + known bits (SSA only).
//!
//! Where [`crate::constfold`] folds what is syntactically constant,
//! this pass folds what the `fcc-dataflow` analyses *prove* constant:
//! φs whose other inputs arrive on dead edges, instructions whose
//! operand ranges pin a single result (`i % 8` under a refined loop
//! counter feeding `t < 0`), and conditional branches with a
//! provably-dead successor edge. The proofs come from the sparse
//! conditional solver, so branch-condition refinement and
//! executable-edge tracking both feed the folds.
//!
//! Copies are deliberately left alone and no uses are rewritten: the
//! φ-web destruction paths behind [`crate::copy_preserving_pipeline`]
//! stay sound in the presence of this pass.

use fcc_analysis::AnalysisManager;
use fcc_dataflow::FunctionAnalysis;
use fcc_ir::{Block, Function, Inst, InstKind};

use crate::constfold::restore_phis_first;

/// Statistics from one `range_fold` run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RangeFoldStats {
    /// Instructions replaced by `const`.
    pub folded: usize,
    /// Conditional branches with a provably-dead edge rewritten to
    /// jumps.
    pub branches_resolved: usize,
    /// Single-argument φs collapsed into copies.
    pub phis_collapsed: usize,
    /// Unreachable blocks removed afterwards.
    pub blocks_removed: usize,
}

/// Fold analysis-proven constants and dead branches to a fixpoint.
pub fn range_fold(func: &mut Function) -> RangeFoldStats {
    range_fold_with(func, &mut AnalysisManager::new())
}

/// [`range_fold`], sharing analyses through `am`.
pub fn range_fold_with(func: &mut Function, am: &mut AnalysisManager) -> RangeFoldStats {
    let mut stats = RangeFoldStats::default();
    while fold_once(func, am, &mut stats) {}
    stats
}

fn fold_once(func: &mut Function, am: &mut AnalysisManager, stats: &mut RangeFoldStats) -> bool {
    let fa = FunctionAnalysis::compute(func, am);
    let mut changed = false;

    // Replace every proven-constant definition. Copies stay (φ-web
    // soundness), and what is already `const` needs no work.
    let blocks: Vec<Block> = func.blocks().collect();
    for &b in &blocks {
        if !fa.block_live(b) {
            continue;
        }
        for inst in func.block_insts(b).to_vec() {
            let data = func.inst(inst);
            if data.dst.is_none()
                || matches!(
                    data.kind,
                    InstKind::Const { .. }
                        | InstKind::Copy { .. }
                        | InstKind::Param { .. }
                        | InstKind::Load { .. }
                )
            {
                continue;
            }
            let dst = data.dst.expect("checked above");
            if let Some(imm) = fa.constant_of(dst) {
                func.inst_mut(inst).kind = InstKind::Const { imm };
                stats.folded += 1;
                changed = true;
            }
        }
    }
    // A folded φ leaves a const at the block head; everything below
    // scans φs from the top, so restore the invariant right away.
    if changed {
        restore_phis_first(func);
    }

    // Rewrite branches with a provably-dead successor edge into jumps.
    let mut resolved_any = false;
    for &b in &blocks {
        if !fa.block_live(b) {
            continue;
        }
        let Some(term) = func.terminator(b) else {
            continue;
        };
        if let InstKind::Branch {
            then_dst, else_dst, ..
        } = func.inst(term).kind
        {
            if then_dst == else_dst {
                continue;
            }
            let dst = match (fa.edge_live(b, then_dst), fa.edge_live(b, else_dst)) {
                (true, false) => then_dst,
                (false, true) => else_dst,
                _ => continue,
            };
            func.inst_mut(term).kind = InstKind::Jump { dst };
            stats.branches_resolved += 1;
            resolved_any = true;
            changed = true;
        }
    }

    if resolved_any {
        // Dropped edges invalidate φ keys, exactly as in constfold:
        // retain arguments whose predecessor still has an edge here,
        // after pruning the blocks made unreachable.
        stats.blocks_removed += func.remove_unreachable_blocks();
        let cfg = am.cfg(func);
        for b in func.blocks().collect::<Vec<_>>() {
            let phis: Vec<Inst> = func.block_phis(b).collect();
            for phi in phis {
                let preds: Vec<Block> = cfg.preds(b).to_vec();
                if let InstKind::Phi { args } = &mut func.inst_mut(phi).kind {
                    args.retain(|a| preds.contains(&a.pred));
                }
            }
        }
    }

    // Collapse single-argument φs into copies.
    for &b in &blocks {
        if !func.blocks().any(|x| x == b) {
            continue; // removed above
        }
        let phis: Vec<Inst> = func.block_phis(b).collect();
        for phi in phis {
            if let InstKind::Phi { args } = &func.inst(phi).kind {
                if args.len() == 1 {
                    let src = args[0].value;
                    func.inst_mut(phi).kind = InstKind::Copy { src };
                    stats.phis_collapsed += 1;
                    changed = true;
                }
            }
        }
    }

    // Collapsed φs became copies at the block head; restore the
    // φs-first invariant once more before handing the function back.
    if changed {
        restore_phis_first(func);
    }

    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcc_ir::parse::parse_function;
    use fcc_ir::verify::verify_function;

    #[test]
    fn folds_what_plain_constfold_cannot() {
        // t = x % 8 under x ≥ 0: `t < 0` is provably false — no
        // syntactic constant anywhere near the branch.
        let mut f = parse_function(
            "function @g(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 v2 = ge v0, v1
                 branch v2, b1, b5
             b1:
                 v3 = const 8
                 v4 = rem v0, v3
                 v5 = lt v4, v1
                 branch v5, b2, b3
             b2:
                 v6 = const 111
                 jump b4
             b3:
                 v7 = const 222
                 jump b4
             b4:
                 v8 = phi [b2: v6], [b3: v7]
                 jump b5
             b5:
                 return v1
             }",
        )
        .unwrap();
        let before = fcc_interp::run(&f, &[42]).unwrap().ret;
        let stats = range_fold(&mut f);
        assert!(stats.branches_resolved >= 1, "{stats:?}");
        assert!(stats.folded >= 1, "v5 and the φ fold: {stats:?}");
        assert!(stats.blocks_removed >= 1, "b2 removed: {stats:?}");
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[42]).unwrap().ret, before);
        assert_eq!(fcc_interp::run(&f, &[-3]).unwrap().ret, before);
    }

    #[test]
    fn keeps_data_dependent_branches() {
        let mut f = parse_function(
            "function @k(1) {
             b0:
                 v0 = param 0
                 v1 = const 10
                 v2 = lt v0, v1
                 branch v2, b1, b2
             b1:
                 jump b2
             b2:
                 return v0
             }",
        )
        .unwrap();
        let stats = range_fold(&mut f);
        assert_eq!(stats.branches_resolved, 0);
        verify_function(&f).unwrap();
    }

    #[test]
    fn loop_counter_modulo_guard_folds() {
        // for i in 0..n: t = i % 8; if (t > 7) unreachable.
        let mut f = parse_function(
            "function @m(1) {
             b0:
                 v0 = param 0
                 v1 = const 0
                 jump b1
             b1:
                 v2 = phi [b0: v1], [b4: v4]
                 v3 = lt v2, v0
                 branch v3, b2, b5
             b2:
                 v5 = const 8
                 v6 = rem v2, v5
                 v7 = gt v6, v5
                 branch v7, b3, b4
             b3:
                 v8 = const 1000000
                 jump b4
             b4:
                 v9 = phi [b2: v6], [b3: v8]
                 v10 = const 1
                 v4 = add v2, v10
                 jump b1
             b5:
                 return v2
             }",
        )
        .unwrap();
        let before = fcc_interp::run(&f, &[20]).unwrap().ret;
        let stats = range_fold(&mut f);
        assert!(
            stats.branches_resolved >= 1,
            "the t > 8 guard is provably dead: {stats:?}"
        );
        verify_function(&f).unwrap();
        assert_eq!(fcc_interp::run(&f, &[20]).unwrap().ret, before);
    }
}
